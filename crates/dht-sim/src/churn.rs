//! The §4.4 continuous-churn simulation.
//!
//! "Key lookups are generated according to a Poisson process at a rate of
//! one per second. Joins and voluntary leaves are modeled by a Poisson
//! process with a mean rate of R... each node invokes the stabilization
//! protocol once every 30 s and each node's stabilization routine is at
//! intervals that are uniformly distributed in the 30 s interval. The
//! network starts with 2048 nodes."

use dht_core::audit::{AuditReport, AuditScope};
use dht_core::lookup::LookupTrace;
use dht_core::net::NetConditions;
use dht_core::obs::{Event as TraceEvent, SinkHandle};
use dht_core::overlay::Overlay;
use rand::{Rng, RngCore};

use crate::event::{exp_delay, EventQueue, SECOND};

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Lookup arrival rate per second (the paper uses 1.0).
    pub lookup_rate: f64,
    /// Join rate per second == leave rate per second (the paper's `R`).
    pub churn_rate: f64,
    /// Stabilization period per node in seconds (the paper uses 30).
    pub stabilization_period_secs: u64,
    /// Number of lookups to observe before stopping.
    pub lookups: usize,
    /// Warm-up lookups discarded before measurement starts.
    pub warmup_lookups: usize,
    /// Run the online state audit (see [`dht_core::audit`]) after every
    /// full stabilization round and at the end of the run.
    pub audit: bool,
    /// Network conditions (fault plan + retry policy) lookups run under,
    /// so message loss and churn compose. Default: an ideal network.
    pub conditions: NetConditions,
    /// Trace sink installed on the overlay for the run: the walk engine
    /// emits lookup events through it, and the churn engine adds
    /// `Join`/`Leave`/`StabilizeRound`/`AuditRun`. Default: disabled.
    pub sink: SinkHandle,
    /// Worker-thread cap for lookup batches. Lookups arriving between two
    /// membership/stabilization events are independent reads, so the
    /// engine buffers them and routes each batch through
    /// [`Overlay::lookup_batch`]; results are bit-identical for every
    /// value. Default: 1.
    pub jobs: usize,
}

impl Default for ChurnParams {
    fn default() -> Self {
        Self {
            lookup_rate: 1.0,
            churn_rate: 0.05,
            stabilization_period_secs: 30,
            lookups: 10_000,
            warmup_lookups: 200,
            audit: false,
            conditions: NetConditions::ideal(),
            sink: SinkHandle::disabled(),
            jobs: 1,
        }
    }
}

/// Aggregate result of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Path length of every measured lookup.
    pub path_lens: Vec<usize>,
    /// Timeout count of every measured lookup.
    pub timeouts: Vec<u64>,
    /// Lookups that did not resolve at the key's owner.
    pub failures: usize,
    /// Total joins executed.
    pub joins: usize,
    /// Total leaves executed.
    pub leaves: usize,
    /// Final network size.
    pub final_size: usize,
    /// Message retries of every measured lookup (loss-induced re-sends;
    /// all-zero under an ideal [`ChurnParams::conditions`]).
    pub retries: Vec<u64>,
    /// Simulated end-to-end latency of every measured lookup, in µs.
    pub latency_us: Vec<u64>,
    /// Accumulated online audit (one pass per stabilization round plus a
    /// final pass), when [`ChurnParams::audit`] was set.
    pub audit: Option<AuditReport>,
    /// Largest network size observed during the run (the peak
    /// `Membership` population).
    pub peak_size: usize,
    /// Per-node stabilization routines invoked — the run's maintenance
    /// message proxy.
    pub stabilize_calls: u64,
    /// Full stabilization rounds completed.
    pub stabilize_rounds: u64,
    /// Wall-clock time spent inside audit passes, in µs (zero when
    /// auditing is off).
    pub audit_us: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Lookup,
    Join,
    Leave,
    /// Stabilization tick for one bucket of nodes.
    StabilizeBucket(u64),
}

/// Runs the churn simulation on `overlay`, which should already contain
/// the starting population.
///
/// Per-node stabilization at uniformly distributed offsets is modelled by
/// splitting the period into per-second buckets: every second, the nodes
/// whose token hashes into that bucket run their stabilization routine —
/// statistically identical to each node keeping its own 30 s timer with a
/// uniform phase.
pub fn run_churn(
    overlay: &mut dyn Overlay,
    params: ChurnParams,
    rng: &mut impl RngCore,
) -> ChurnOutcome {
    assert!(overlay.len() > 1, "churn needs a populated overlay");
    overlay.set_net_conditions(params.conditions);
    overlay.set_trace_sink(params.sink.clone());
    let period = params.stabilization_period_secs.max(1);
    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.schedule(exp_delay(params.lookup_rate, rng), Event::Lookup);
    if params.churn_rate > 0.0 {
        queue.schedule(exp_delay(params.churn_rate, rng), Event::Join);
        queue.schedule(exp_delay(params.churn_rate, rng), Event::Leave);
    }
    for bucket in 0..period {
        queue.schedule((bucket + 1) * SECOND, Event::StabilizeBucket(bucket));
    }

    let mut outcome = ChurnOutcome {
        path_lens: Vec::with_capacity(params.lookups),
        timeouts: Vec::with_capacity(params.lookups),
        failures: 0,
        joins: 0,
        leaves: 0,
        final_size: 0,
        retries: Vec::with_capacity(params.lookups),
        latency_us: Vec::with_capacity(params.lookups),
        audit: params
            .audit
            .then(|| AuditReport::new(overlay.name(), AuditScope::Online)),
        peak_size: overlay.len(),
        stabilize_calls: 0,
        stabilize_rounds: 0,
        audit_us: 0,
    };
    let mut seen_lookups = 0usize;
    // Lookups arriving between two membership events are buffered with
    // their arrival ordinal and routed as one parallel batch right
    // before the next state mutation (join/leave/stabilization), the
    // next audit, or the end of the run. Sources, keys, and the
    // measurement window are drawn/decided at arrival time, so the
    // workload is identical to the sequential engine's.
    let mut pending: Vec<(usize, dht_core::overlay::NodeToken, u64)> = Vec::new();

    // One timed online audit pass: merged into the accumulated report,
    // billed to `audit_us`, and announced through the sink.
    let audit_pass = |overlay: &mut dyn Overlay, outcome: &mut ChurnOutcome| {
        if outcome.audit.is_none() {
            return;
        }
        let started = std::time::Instant::now();
        let report = overlay.audit_state(AuditScope::Online);
        outcome.audit_us = outcome
            .audit_us
            .saturating_add(started.elapsed().as_micros() as u64);
        params.sink.emit(|| TraceEvent::AuditRun {
            clean: report.is_clean(),
            checked: report.checked_nodes() as u64,
            violations: report.violations().len() as u64,
        });
        if let Some(acc) = outcome.audit.as_mut() {
            acc.merge(report);
        }
    };

    // Routes the buffered lookups as one batch and records the measured
    // ones (by arrival ordinal) into the outcome.
    let flush = |overlay: &mut dyn Overlay,
                 outcome: &mut ChurnOutcome,
                 pending: &mut Vec<(usize, dht_core::overlay::NodeToken, u64)>| {
        if pending.is_empty() {
            return;
        }
        let reqs: Vec<(dht_core::overlay::NodeToken, u64)> =
            pending.iter().map(|&(_, src, raw)| (src, raw)).collect();
        let traces = overlay.lookup_batch(&reqs, params.jobs.max(1));
        for ((ordinal, _, _), trace) in pending.drain(..).zip(traces) {
            let trace: LookupTrace = trace;
            if ordinal > params.warmup_lookups {
                outcome.path_lens.push(trace.path_len());
                outcome.timeouts.push(u64::from(trace.timeouts));
                outcome.retries.push(u64::from(trace.net.retries));
                outcome.latency_us.push(trace.net.latency_us);
                if !trace.outcome.is_success() {
                    outcome.failures += 1;
                }
            }
        }
    };

    while let Some((_, event)) = queue.pop() {
        match event {
            Event::Lookup => {
                seen_lookups += 1;
                if let Some(src) = overlay.random_node(rng) {
                    let raw: u64 = rng.gen();
                    pending.push((seen_lookups, src, raw));
                }
                if seen_lookups < params.warmup_lookups + params.lookups {
                    queue.schedule_in(exp_delay(params.lookup_rate, rng), Event::Lookup);
                } else {
                    // Last arrival: route everything still buffered so the
                    // run can stop without waiting for a membership event.
                    flush(overlay, &mut outcome, &mut pending);
                }
            }
            Event::Join => {
                flush(overlay, &mut outcome, &mut pending);
                if let Some(node) = overlay.join(rng) {
                    outcome.joins += 1;
                    outcome.peak_size = outcome.peak_size.max(overlay.len());
                    params.sink.emit(|| TraceEvent::Join { node });
                }
                queue.schedule_in(exp_delay(params.churn_rate, rng), Event::Join);
            }
            Event::Leave => {
                flush(overlay, &mut outcome, &mut pending);
                // Keep at least a handful of nodes alive.
                if overlay.len() > 8 {
                    if let Some(node) = overlay.random_node(rng) {
                        if overlay.leave(node) {
                            outcome.leaves += 1;
                            params.sink.emit(|| TraceEvent::Leave {
                                node,
                                graceful: true,
                            });
                        }
                    }
                }
                queue.schedule_in(exp_delay(params.churn_rate, rng), Event::Leave);
            }
            Event::StabilizeBucket(bucket) => {
                flush(overlay, &mut outcome, &mut pending);
                for token in overlay.node_tokens() {
                    if dht_core::hash::splitmix64(token) % period == bucket {
                        overlay.stabilize_node(token);
                        outcome.stabilize_calls += 1;
                    }
                }
                // The last bucket closes a full stabilization round:
                // every online invariant must hold right now, mid-churn.
                if bucket + 1 == period {
                    let round = outcome.stabilize_rounds;
                    outcome.stabilize_rounds += 1;
                    params.sink.emit(|| TraceEvent::StabilizeRound {
                        round,
                        nodes: overlay.len() as u64,
                    });
                    audit_pass(overlay, &mut outcome);
                }
                queue.schedule_in(period * SECOND, Event::StabilizeBucket(bucket));
            }
        }
        if outcome.path_lens.len() >= params.lookups {
            break;
        }
    }

    flush(overlay, &mut outcome, &mut pending);
    audit_pass(overlay, &mut outcome);
    outcome.final_size = overlay.len();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_overlay, OverlayKind};
    use dht_core::rng::stream;

    fn small_params(rate: f64) -> ChurnParams {
        ChurnParams {
            lookup_rate: 1.0,
            churn_rate: rate,
            stabilization_period_secs: 30,
            lookups: 300,
            warmup_lookups: 20,
            audit: false,
            conditions: NetConditions::ideal(),
            sink: SinkHandle::disabled(),
            jobs: 1,
        }
    }

    #[test]
    fn churn_run_produces_measurements() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 256, 1);
        let mut rng = stream(2, "churn-test");
        let out = run_churn(net.as_mut(), small_params(0.2), &mut rng);
        assert_eq!(out.path_lens.len(), 300);
        assert_eq!(out.timeouts.len(), 300);
        assert!(out.joins > 0, "joins should occur at R=0.2");
        assert!(out.leaves > 0, "leaves should occur at R=0.2");
        assert_eq!(out.failures, 0, "Cycloid under churn must not fail");
    }

    #[test]
    fn zero_churn_is_steady_state() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 128, 3);
        let mut rng = stream(4, "steady");
        let out = run_churn(net.as_mut(), small_params(0.0), &mut rng);
        assert_eq!(out.joins, 0);
        assert_eq!(out.leaves, 0);
        assert_eq!(out.final_size, 128);
        assert!(out.timeouts.iter().all(|&t| t == 0));
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = build_overlay(OverlayKind::Koorde, 128, seed);
            let mut rng = stream(seed, "det");
            run_churn(net.as_mut(), small_params(0.1), &mut rng).path_lens
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn audited_churn_reports_clean_state() {
        let mut net = build_overlay(OverlayKind::Chord, 128, 9);
        let mut rng = stream(10, "audit-churn");
        let mut params = small_params(0.2);
        params.audit = true;
        let out = run_churn(net.as_mut(), params, &mut rng);
        let audit = out.audit.expect("audit requested");
        assert!(audit.checked_nodes() > 0, "audit must run at least once");
        assert!(audit.is_clean(), "{audit}");
    }

    #[test]
    fn audit_off_reports_nothing() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 11);
        let mut rng = stream(12, "no-audit");
        let out = run_churn(net.as_mut(), small_params(0.1), &mut rng);
        assert!(out.audit.is_none());
    }

    #[test]
    fn lossy_churn_composes_and_stays_deterministic() {
        use dht_core::net::{FaultPlan, RetryPolicy};
        let run = || {
            let mut net = build_overlay(OverlayKind::Cycloid7, 128, 21);
            let mut rng = stream(22, "lossy-churn");
            let mut params = small_params(0.2);
            params.conditions =
                NetConditions::new(FaultPlan::lossy(5, 0.05), RetryPolicy::standard());
            run_churn(net.as_mut(), params, &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.path_lens, b.path_lens);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.latency_us, b.latency_us);
        assert_eq!(a.retries.len(), 300);
        assert!(a.retries.iter().sum::<u64>() > 0, "5% loss must retry");
        // Zero-hop lookups (source owns the key) legitimately bill nothing,
        // so check the aggregate rather than every sample.
        assert!(a.latency_us.iter().sum::<u64>() > 0, "hops are billed");
    }

    #[test]
    fn churn_tracks_maintenance_counters() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 256, 1);
        let mut rng = stream(2, "counters");
        let out = run_churn(net.as_mut(), small_params(0.2), &mut rng);
        assert!(out.peak_size >= 256, "peak covers at least the start size");
        assert!(out.peak_size >= out.final_size);
        assert!(out.stabilize_calls > 0, "stabilization must run");
        assert!(out.stabilize_rounds > 0, "at least one full round");
        assert_eq!(out.audit_us, 0, "no audit requested, no audit time");
    }

    #[test]
    fn churn_emits_membership_and_round_events() {
        use dht_core::obs::RingBufferSink;
        use std::sync::{Arc, Mutex};
        let ring = Arc::new(Mutex::new(RingBufferSink::new(1 << 16)));
        let mut net = build_overlay(OverlayKind::Chord, 128, 9);
        let mut rng = stream(10, "churn-events");
        let mut params = small_params(0.3);
        params.audit = true;
        params.sink = SinkHandle::new(Arc::clone(&ring));
        let out = run_churn(net.as_mut(), params, &mut rng);
        let events = ring.lock().unwrap().snapshot();
        let count = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::Join { .. })),
            out.joins,
            "one Join event per executed join"
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::Leave { graceful: true, .. })),
            out.leaves
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::StabilizeRound { .. })) as u64,
            out.stabilize_rounds
        );
        // One audit per round plus the final pass.
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::AuditRun { .. })) as u64,
            out.stabilize_rounds + 1
        );
        assert!(out.audit_us > 0, "audit passes are timed");
        assert!(
            count(&|e| matches!(e, TraceEvent::LookupStart { .. })) > 0,
            "lookup events flow through the same sink"
        );
    }

    #[test]
    fn viceroy_under_churn_never_times_out() {
        let mut net = build_overlay(OverlayKind::Viceroy, 256, 5);
        let mut rng = stream(6, "vchurn");
        let out = run_churn(net.as_mut(), small_params(0.4), &mut rng);
        assert!(out.timeouts.iter().all(|&t| t == 0));
        assert_eq!(out.failures, 0);
    }
}
