//! Discrete-event primitives, re-exported from [`dht_core::clock`].
//!
//! The minimal event queue that originally lived here was promoted into
//! the shared substrate as the first-class virtual-clock kernel
//! ([`dht_core::clock`]) so the fault layer's delay draws, per-node
//! stabilization timers, and suspended lookups all share one notion of
//! time. This module remains as a façade so existing `dht_sim::event`
//! users keep compiling.

pub use dht_core::clock::{exp_delay, EventQueue, SimTime, SECOND};
