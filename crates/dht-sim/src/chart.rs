//! Terminal line charts: renders the figures as figures.
//!
//! A [`Chart`] holds one or more named series sampled at shared x
//! positions and renders them onto a character grid with a y-axis, an
//! x-axis, and a glyph legend — enough to eyeball the shapes (orderings,
//! growth rates, crossovers) the reproduction is about, straight from
//! `repro --chart` output.

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];

/// A multi-series line chart.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_labels: Vec<String>,
    series: Vec<(String, Vec<Option<f64>>)>,
    height: usize,
}

impl Chart {
    /// Creates a chart over the given x positions.
    #[must_use]
    pub fn new(title: &str, x_labels: Vec<String>) -> Self {
        Self {
            title: title.to_string(),
            x_labels,
            series: Vec::new(),
            height: 16,
        }
    }

    /// Sets the plot height in rows (default 16).
    #[must_use]
    pub fn with_height(mut self, rows: usize) -> Self {
        self.height = rows.clamp(4, 64);
        self
    }

    /// Adds a series; its length must match the x labels (use `None` for
    /// missing points).
    pub fn series(&mut self, name: &str, values: Vec<Option<f64>>) {
        assert_eq!(
            values.len(),
            self.x_labels.len(),
            "series '{name}' length must match the x axis"
        );
        self.series.push((name.to_string(), values));
    }

    /// Convenience: adds a fully populated series.
    pub fn series_full(&mut self, name: &str, values: Vec<f64>) {
        self.series(name, values.into_iter().map(Some).collect());
    }

    /// Renders the chart.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let points: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, vs)| vs.iter().flatten().copied())
            .collect();
        if points.is_empty() || self.x_labels.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let y_max = points.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
        let y_min = 0.0f64; // figures in this suite are all zero-based
        let rows = self.height;
        // One column per x position, spaced for readability.
        let col_width = 6usize;
        let width = self.x_labels.len() * col_width;
        let mut grid = vec![vec![' '; width]; rows];
        for (si, (_, values)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (xi, v) in values.iter().enumerate() {
                if let Some(v) = v {
                    let frac = ((v - y_min) / (y_max - y_min)).clamp(0.0, 1.0);
                    let row = ((1.0 - frac) * (rows - 1) as f64).round() as usize;
                    let col = xi * col_width + col_width / 2;
                    // Stack overlapping series markers side by side.
                    let mut c = col;
                    while c < width && grid[row][c] != ' ' {
                        c += 1;
                    }
                    if c < width {
                        grid[row][c] = glyph;
                    }
                }
            }
        }
        let label_width = 8;
        for (ri, row) in grid.iter().enumerate() {
            let y_val = y_max * (1.0 - ri as f64 / (rows - 1) as f64);
            let label = if ri % 4 == 0 || ri == rows - 1 {
                format!("{y_val:>7.1}")
            } else {
                " ".repeat(7)
            };
            out.push_str(&format!("{label} |"));
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} +{}\n",
            " ".repeat(label_width - 1),
            "-".repeat(width)
        ));
        // X labels, centred per column.
        out.push_str(&" ".repeat(label_width + 1));
        for l in &self.x_labels {
            let trimmed: String = l.chars().take(col_width - 1).collect();
            out.push_str(&format!("{trimmed:<col_width$}"));
        }
        out.push('\n');
        // Legend.
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], name));
        }
        out
    }
}

/// Builds a chart from the same `(x, series, value)` triples the table
/// pivots use.
#[must_use]
pub fn chart_from_triples(title: &str, triples: &[(String, String, f64)]) -> Chart {
    let mut xs: Vec<String> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (x, s, _) in triples {
        if !xs.contains(x) {
            xs.push(x.clone());
        }
        if !names.contains(s) {
            names.push(s.clone());
        }
    }
    let mut chart = Chart::new(title, xs.clone());
    for name in &names {
        let values: Vec<Option<f64>> = xs
            .iter()
            .map(|x| {
                triples
                    .iter()
                    .find(|(tx, ts, _)| tx == x && ts == name)
                    .map(|(_, _, v)| *v)
            })
            .collect();
        chart.series(name, values);
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_axes_labels_and_legend() {
        let mut c = Chart::new("demo", vec!["1".into(), "2".into(), "4".into()]);
        c.series_full("up", vec![1.0, 2.0, 4.0]);
        c.series_full("flat", vec![2.0, 2.0, 2.0]);
        let s = c.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("o up"));
        assert!(s.contains("x flat"));
        assert!(s.contains('|'));
        assert!(s.contains('+'));
        assert!(s.contains("4.0"), "y max label:\n{s}");
    }

    #[test]
    fn monotone_series_renders_monotone_rows() {
        let mut c = Chart::new("mono", (1..=5).map(|i| i.to_string()).collect());
        c.series_full("grow", vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = c.render();
        // The glyph for larger values appears on earlier (higher) lines.
        let lines: Vec<&str> = s.lines().collect();
        let row_of = |col_block: usize| {
            lines
                .iter()
                .position(|l| {
                    l.get(9..).is_some_and(|body| {
                        body.chars()
                            .enumerate()
                            .any(|(i, ch)| ch == 'o' && i / 6 == col_block)
                    })
                })
                .unwrap()
        };
        assert!(row_of(4) < row_of(0), "larger value must be higher");
    }

    #[test]
    fn empty_chart_says_no_data() {
        let c = Chart::new("empty", vec!["a".into()]);
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn triples_builder_fills_missing_points() {
        let triples = vec![
            ("1".to_string(), "A".to_string(), 1.0),
            ("2".to_string(), "A".to_string(), 2.0),
            ("2".to_string(), "B".to_string(), 5.0),
        ];
        let chart = chart_from_triples("t", &triples);
        let s = chart.render();
        assert!(s.contains("o A"));
        assert!(s.contains("x B"));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_series_rejected() {
        let mut c = Chart::new("bad", vec!["1".into(), "2".into()]);
        c.series_full("s", vec![1.0]);
    }
}
