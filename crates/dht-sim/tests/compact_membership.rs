//! Equivalence suite for the compact membership store.
//!
//! `dht_core::sim::Membership` keeps two interchangeable backends: the
//! original `BTreeMap` formulation (`StoreKind::Legacy`) and the
//! struct-of-arrays `CompactStore` (`StoreKind::Compact`, the default).
//! Every observable behavior — lookup traces, per-node query-load
//! tables, audit reports, and the membership's own RNG draw sequence —
//! must be identical between the two, for every overlay kind, under
//! arbitrary join/leave scripts, at any worker count. These tests pin
//! that contract; the golden traces in `results/` pin it again at the
//! repository level.

use dht_core::audit::AuditScope;
use dht_core::overlay::{NodeToken, Overlay};
use dht_core::rng::stream;
use dht_core::sim::{set_default_store_kind, Membership, StoreKind};
use dht_sim::factory::{build_overlay, OverlayKind, ALL_KINDS};
use proptest::prelude::*;
use rand::RngCore;

/// One membership operation of a churn script.
#[derive(Debug, Clone, Copy)]
enum Op {
    Join,
    /// Leave the node at this index into the current sorted token list.
    Leave(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::Join), (0usize..1024).prop_map(Op::Leave),]
}

/// Everything one run observes, in comparable form.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    tokens: Vec<NodeToken>,
    traces: Vec<String>,
    loads: Vec<u64>,
    audit: String,
    audit_clean: bool,
}

/// Builds `kind` on `store`, applies `script`, routes `lookups` keys at
/// `jobs` workers, and captures every observable output.
fn run_script(
    kind: OverlayKind,
    store: StoreKind,
    n: usize,
    script: &[Op],
    lookups: usize,
    jobs: usize,
    seed: u64,
) -> Observed {
    set_default_store_kind(store);
    let mut net = build_overlay(kind, n, seed);
    set_default_store_kind(StoreKind::Compact);
    let mut rng = stream(seed, "compact-equiv");
    for &op in script {
        match op {
            Op::Join => {
                net.join(&mut rng);
            }
            Op::Leave(i) => {
                if net.len() > 8 {
                    let victim = net.node_tokens()[i % net.len()];
                    net.leave(victim);
                }
            }
        }
    }
    let reqs: Vec<(NodeToken, u64)> = (0..lookups)
        .map(|_| {
            let src = net.random_node(&mut rng).expect("populated");
            (src, rng.next_u64())
        })
        .collect();
    let traces = net
        .lookup_batch(&reqs, jobs)
        .into_iter()
        .map(|t| format!("{t:?}"))
        .collect();
    let report = net.audit_state(AuditScope::Full);
    Observed {
        tokens: net.node_tokens(),
        traces,
        loads: net.query_loads(),
        audit: report.to_string(),
        audit_clean: report.is_clean(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole contract: for every overlay kind and arbitrary
    /// join/leave scripts, the legacy and compact backends observe the
    /// same world — same tokens, same lookup traces, same query-load
    /// table, same audit report — at one worker and at four.
    #[test]
    fn backends_are_observationally_equivalent(
        script in proptest::collection::vec(op_strategy(), 0..24),
        seed in 1u64..1 << 20,
    ) {
        for kind in ALL_KINDS {
            for jobs in [1usize, 4] {
                let legacy = run_script(kind, StoreKind::Legacy, 64, &script, 48, jobs, seed);
                let compact = run_script(kind, StoreKind::Compact, 64, &script, 48, jobs, seed);
                // The contract is equality, not cleanliness: a full-scope
                // audit may legitimately be dirty mid-churn (stabilization
                // never ran), but both backends must agree on exactly how.
                prop_assert_eq!(
                    &legacy,
                    &compact,
                    "{} diverged across store backends at jobs={}",
                    kind.label(),
                    jobs
                );
            }
        }
    }
}

/// Regression: `token_at` and the dense mirror stay consistent when the
/// same token joins, leaves, and rejoins interleaved with other churn —
/// the swap-remove + index-patch path the compact store takes on every
/// removal.
#[test]
fn token_at_survives_interleaved_rejoin() {
    for store in [StoreKind::Legacy, StoreKind::Compact] {
        let mut m: Membership<u64> = Membership::with_store_kind(7, store);
        for t in (0..64u64).map(|i| i * 97) {
            m.insert(t, t);
        }
        // Interleave: remove a token, churn others, re-insert it.
        for round in 0..32u64 {
            let token = (round % 64) * 97;
            assert_eq!(m.remove(token), Some(token), "{store:?}");
            let other = ((round + 17) % 64) * 97;
            if other != token {
                m.remove(other);
                m.insert(other, other);
            }
            m.insert(token, token);
            // The dense mirror must agree with the sorted token list at
            // every position after every rejoin.
            let tokens = m.tokens();
            assert!(tokens.windows(2).all(|w| w[0] < w[1]), "{store:?}: sorted");
            for (i, &t) in tokens.iter().enumerate() {
                assert_eq!(m.token_at(i), Some(t), "{store:?} position {i}");
                assert_eq!(m.get(t), Some(&t), "{store:?} state of {t}");
            }
            assert_eq!(m.token_at(tokens.len()), None, "{store:?}");
        }
        assert_eq!(m.len(), 64, "{store:?}");
    }
}

/// Regression for the query-load rebuild: after a counted node departs,
/// the load table must forget it entirely — no ghost entries, totals
/// equal to the surviving nodes' counts — on both backends.
#[test]
fn query_loads_survive_departure_without_ghosts() {
    for store in [StoreKind::Legacy, StoreKind::Compact] {
        let mut m: Membership<()> = Membership::with_store_kind(3, store);
        for t in [10u64, 20, 30, 40, 50] {
            m.insert(t, ());
        }
        for (t, k) in [(10u64, 4u64), (20, 3), (30, 2), (40, 1)] {
            m.add_queries(t, k);
        }
        assert_eq!(m.loads_total(), 10, "{store:?}");
        m.remove(20);
        assert_eq!(m.load_of(20), 0, "{store:?}: departed node forgotten");
        assert_eq!(m.loads_total(), 7, "{store:?}: total drops with it");
        assert_eq!(m.query_loads(), vec![4, 2, 1, 0], "{store:?}");
        // A rejoin starts from zero, not the ghost of the old count.
        m.insert(20, ());
        assert_eq!(m.load_of(20), 0, "{store:?}: rejoin starts clean");
        assert_eq!(m.query_loads(), vec![4, 0, 2, 1, 0], "{store:?}");
    }
}

/// Overlay-level version of the ghost-entry check: lookups accumulate
/// loads, a node departs, and the table stays exactly the live
/// population on the compact (default) store.
#[test]
fn overlay_query_loads_track_departures() {
    let mut net = build_overlay(OverlayKind::Cycloid7, 64, 11);
    let mut rng = stream(12, "ghost");
    for _ in 0..200 {
        let src = net.random_node(&mut rng).unwrap();
        net.lookup(src, rng.next_u64());
    }
    let before: u64 = net.query_loads().iter().sum();
    assert!(before > 0, "lookups accumulated load");
    let victim = net.node_tokens()[13];
    let victim_load = net
        .node_tokens()
        .iter()
        .zip(net.query_loads())
        .find(|&(&t, _)| t == victim)
        .map(|(_, l)| l)
        .unwrap();
    assert!(net.leave(victim));
    let loads = net.query_loads();
    assert_eq!(loads.len(), net.len(), "one entry per live node");
    assert_eq!(
        loads.iter().sum::<u64>(),
        before - victim_load,
        "departed node's count left with it"
    );
}

/// CI smoke: a 10k-node Cycloid(7) on the compact store stays under the
/// documented bytes/node budget (DESIGN.md §12). Measured ~735
/// bytes/node: ~352 B of inline `NodeState` (four fixed-width leaf
/// slots), the dense token/load columns, the hash side-table, and the
/// cycle indexes — with up to 2× slack from `Vec` capacity doubling,
/// which the budget's headroom absorbs.
#[test]
fn cycloid_10k_bytes_per_node_budget() {
    let net = build_overlay(OverlayKind::Cycloid7, 10_000, 1);
    let bpn = net.bytes_per_node();
    assert!(bpn > 0.0, "accounting hooks are wired");
    assert!(
        bpn < 900.0,
        "Cycloid(7) at n=10k must stay under 900 bytes/node, got {bpn:.1}"
    );
}
