//! # Pastry-style prefix-routing DHT
//!
//! The hypercube-based scheme of §2.1 of the Cycloid paper (Rowstron &
//! Druschel, Middleware 2001; routing after Plaxton et al.): identifiers
//! are strings of base-`2^b` digits; each node keeps a **routing table**
//! with one row per shared-prefix length and one column per digit value —
//! "nodes that match each prefix of its own identifier but differ in the
//! next digit" — plus a **leaf set** `L` of the numerically closest nodes
//! (half smaller, half larger). Routing corrects one digit per hop, left
//! to right, resolving in `O(log n)` hops with `O(log n)`-sized state.
//!
//! Cycloid borrows exactly this left-to-right prefix correction for its
//! descending phase and the leaf-set fallback for its fault tolerance, so
//! this crate doubles as the reference implementation of the machinery
//! Cycloid specializes down to constant degree.
//!
//! The proximity-based *neighborhood set* `M` is omitted: it only affects
//! locality-aware entry selection, which none of the paper's hop-count
//! experiments exercise (noted in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ```
//! use pastry::{PastryConfig, PastryNetwork};
//!
//! let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 500, 42);
//! let src = net.ids().next().unwrap();
//! let trace = net.route(src, 0xfeed);
//! assert!(trace.outcome.is_success());
//! assert!(trace.path_len() <= 12); // one hop per corrected digit + slack
//! ```

mod audit;
pub mod network;
mod repair;

pub use network::{PastryConfig, PastryNetwork, PastryNode};
