//! Conformance audit: checks every node's leaf set and prefix routing
//! table against the live membership.
//!
//! Leaf sets are repaired eagerly by the graceful join/leave protocol and
//! are checked at [`AuditScope::Online`]; routing-table rows are only
//! repaired by stabilization and are checked at [`AuditScope::Full`].

use dht_core::audit::{AuditReport, AuditScope, StateAudit};
use dht_core::sim::SimOverlay;

use crate::network::PastryNetwork;

impl StateAudit for PastryNetwork {
    fn audit(&self, scope: AuditScope) -> AuditReport {
        let mut report = AuditReport::new(self.label(), scope);
        let c = self.config();
        for id in self.ids() {
            report.note_checked(1);
            let node = self.node(id).expect("live id");
            report.check_eq(id, "pastry/node-id", &node.id, &id);

            // Structural shape: `digits × base` slots, and the slot for a
            // node's own digit in each row is always empty (the row
            // "points at" the node itself).
            let slots = (c.digits() * c.base()) as usize;
            report.check(
                id,
                "pastry/table-shape",
                node.table.len() == slots
                    && (0..c.digits()).all(|row| {
                        node.table[(row * c.base() + c.digit(id, row)) as usize].is_none()
                    }),
                || {
                    format!(
                        "{} slots (expected {slots}) or own-digit slot occupied",
                        node.table.len()
                    )
                },
            );

            // Leaf set: the true nearest smaller/larger live identifiers,
            // eagerly repaired on join/leave.
            let (smaller, larger) = self.resolve_leafs(id);
            report.check_eq(id, "pastry/leaf-set", &node.leaf_smaller, &smaller);
            report.check_eq(id, "pastry/leaf-set", &node.leaf_larger, &larger);

            // Prefix table: each slot holds the node resolve_entry picks,
            // lazily repaired by stabilization.
            if scope == AuditScope::Full && node.table.len() == slots {
                for row in 0..c.digits() {
                    for col in 0..c.base() {
                        let idx = (row * c.base() + col) as usize;
                        let expect = self.resolve_entry(id, row, col);
                        report.check(id, "pastry/prefix-table", node.table[idx] == expect, || {
                            format!(
                                "table[{row}][{col}] = {:?}, expected {expect:?}",
                                node.table[idx]
                            )
                        });
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PastryConfig;

    fn net(n: usize) -> PastryNetwork {
        PastryNetwork::with_nodes(PastryConfig::new(10), n, 5)
    }

    #[test]
    fn stabilized_network_is_fully_clean() {
        let net = net(90);
        let report = net.audit(AuditScope::Full);
        assert_eq!(report.checked_nodes(), 90);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn leaf_sets_survive_graceful_churn_without_stabilization() {
        let mut net = net(64);
        for step in 0..30 {
            if step % 3 == 0 {
                let victim = net.ids().nth(step % net.node_count()).unwrap();
                net.leave(victim);
            } else {
                net.join_random();
            }
            let report = net.audit(AuditScope::Online);
            assert!(report.is_clean(), "after step {step}: {report}");
        }
    }

    #[test]
    fn corrupted_table_entry_is_caught_by_name() {
        let mut net = net(90);
        let (id, other) = {
            let mut ids = net.ids();
            (ids.next().unwrap(), ids.nth(40).unwrap())
        };
        // Overwrite a populated slot with a node that cannot belong there.
        let idx = net
            .node(id)
            .unwrap()
            .table
            .iter()
            .position(|e| e.is_some() && *e != Some(other))
            .unwrap();
        net.node_mut(id).unwrap().table[idx] = Some(other);
        let report = net.audit(AuditScope::Full);
        assert!(
            report
                .violated_invariants()
                .contains(&"pastry/prefix-table"),
            "{report}"
        );
        // The table is lazily stabilized: online audits ignore it.
        assert!(net.audit(AuditScope::Online).is_clean());
    }

    #[test]
    fn corrupted_leaf_set_is_caught_online() {
        let mut net = net(90);
        let id = net.ids().next().unwrap();
        net.node_mut(id).unwrap().leaf_larger.clear();
        let report = net.audit(AuditScope::Online);
        assert!(
            report.violated_invariants().contains(&"pastry/leaf-set"),
            "{report}"
        );
    }
}
