//! The simulated Pastry network: digit arithmetic, routing-table and
//! leaf-set resolution, prefix routing, join/leave, and stabilization.

use dht_core::hash::{reduce, splitmix64};
use dht_core::inline::InlineVec;
use dht_core::lookup::{HopPhase, LookupTrace};
use dht_core::overlay::NodeToken;
use dht_core::ring::{clockwise_dist, ring_dist};
use dht_core::sim::{walk_from, Membership, SimOverlay, StepDecision};
use rand::RngCore;

/// Configuration of a Pastry deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastryConfig {
    /// Total identifier bits; the ring has `2^bits` positions.
    pub bits: u32,
    /// Bits per digit (`b`; base `2^b` digits). Pastry's default is 4;
    /// the simulations use 2 to keep tables reasonable at small scales.
    pub digit_bits: u32,
    /// Leaf-set size `|L|` (half numerically smaller, half larger).
    pub leaf_set: usize,
}

impl PastryConfig {
    /// Standard configuration: base-4 digits (`b = 2`), `|L| = 8`.
    ///
    /// # Panics
    /// Panics unless `digit_bits` divides `bits`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        let config = Self {
            bits,
            digit_bits: 2,
            leaf_set: 8,
        };
        config.validate();
        config
    }

    fn validate(&self) {
        assert!(self.bits >= 1 && self.bits <= 63, "bits must be in [1, 63]");
        assert!(
            self.digit_bits >= 1 && self.bits.is_multiple_of(self.digit_bits),
            "digit_bits must divide bits"
        );
        assert!(
            self.leaf_set >= 2 && self.leaf_set.is_multiple_of(2),
            "leaf set must be even"
        );
        assert!(
            self.leaf_set <= 16,
            "leaf set exceeds the 8-per-side inline capacity"
        );
    }

    /// Ring size `2^bits`.
    #[must_use]
    pub fn space(&self) -> u64 {
        1u64 << self.bits
    }

    /// Number of digits per identifier.
    #[must_use]
    pub fn digits(&self) -> u32 {
        self.bits / self.digit_bits
    }

    /// Digit alphabet size `2^b`.
    #[must_use]
    pub fn base(&self) -> u32 {
        1 << self.digit_bits
    }

    /// Extracts digit `row` (0 = most significant) of `id`.
    #[must_use]
    pub fn digit(&self, id: u64, row: u32) -> u32 {
        debug_assert!(row < self.digits());
        let shift = self.bits - (row + 1) * self.digit_bits;
        ((id >> shift) & u64::from(self.base() - 1)) as u32
    }

    /// Length of the common digit prefix of two identifiers.
    #[must_use]
    pub fn shared_prefix(&self, a: u64, b: u64) -> u32 {
        (0..self.digits())
            .take_while(|&row| self.digit(a, row) == self.digit(b, row))
            .count() as u32
    }
}

/// Fixed-capacity half of a Pastry leaf set. The configured `|L|` is 8
/// (four per side); eight inline slots per side cover any even `|L|` up
/// to 16, keeping the leaf set inside the membership slab.
pub type LeafHalf = InlineVec<u64, 8>;

/// Routing state of one Pastry node.
#[derive(Debug, Clone)]
pub struct PastryNode {
    /// This node's identifier.
    pub id: u64,
    /// `table[row * base + col]`: a node sharing the first `row` digits
    /// with this node and having digit `col` at position `row`. `None`
    /// where no such node is live (or where `col` is the node's own
    /// digit).
    pub table: Vec<Option<u64>>,
    /// Numerically smaller leaf-set half, nearest first.
    pub leaf_smaller: LeafHalf,
    /// Numerically larger leaf-set half, nearest first.
    pub leaf_larger: LeafHalf,
}

impl PastryNode {
    fn new(id: u64, config: PastryConfig) -> Self {
        Self {
            id,
            table: vec![None; (config.digits() * config.base()) as usize],
            leaf_smaller: LeafHalf::new(),
            leaf_larger: LeafHalf::new(),
        }
    }

    /// All leaf-set entries.
    pub fn leafs(&self) -> impl Iterator<Item = u64> + '_ {
        self.leaf_smaller.iter().chain(&self.leaf_larger).copied()
    }

    /// Distinct non-self contacts currently held.
    #[must_use]
    pub fn degree(&self) -> usize {
        let mut all: Vec<u64> = self
            .table
            .iter()
            .flatten()
            .copied()
            .chain(self.leafs())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.retain(|&x| x != self.id);
        all.len()
    }
}

/// The state an in-flight Pastry lookup carries: the target ring key.
#[derive(Debug, Clone, Copy)]
pub struct PastryWalk {
    /// Target identifier on the ring.
    pub key: u64,
}

/// A simulated Pastry network.
#[derive(Debug, Clone)]
pub struct PastryNetwork {
    config: PastryConfig,
    members: Membership<PastryNode>,
}

impl PastryNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new(config: PastryConfig, seed: u64) -> Self {
        config.validate();
        Self {
            config,
            members: Membership::new(seed),
        }
    }

    /// Builds a stabilized network of `count` uniformly placed nodes.
    #[must_use]
    pub fn with_nodes(config: PastryConfig, count: usize, seed: u64) -> Self {
        let mut net = Self::new(config, seed);
        assert!(
            count as u64 <= config.space(),
            "space too small for {count} nodes"
        );
        while net.members.len() < count {
            let id = net.members.next_in(config.space());
            if !net.members.contains(id) {
                net.members.insert(id, PastryNode::new(id, config));
            }
        }
        net.stabilize_all();
        net
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> PastryConfig {
        self.config
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// `true` iff `id` is live.
    #[must_use]
    pub fn is_live(&self, id: u64) -> bool {
        self.members.contains(id)
    }

    /// Live node identifiers in ring order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.members.token_iter()
    }

    /// Read access to one node.
    #[must_use]
    pub fn node(&self, id: u64) -> Option<&PastryNode> {
        self.members.get(id)
    }

    /// Exclusive access to one node — for the corruption injector and
    /// the audit tests, which damage state the protocol itself never
    /// produces.
    pub(crate) fn node_mut(&mut self, id: u64) -> Option<&mut PastryNode> {
        self.members.get_mut(id)
    }

    /// Maps a raw key onto the ring.
    #[must_use]
    pub fn key_of(&self, raw_key: u64) -> u64 {
        reduce(splitmix64(raw_key), self.config.space())
    }

    /// The "closer to the key" metric shared by ownership and routing:
    /// twice the ring distance, with a counter-clockwise tie-break so the
    /// successor side wins at equal distance.
    fn key_metric(&self, key: u64, node: u64) -> u64 {
        let space = self.config.space();
        let d = ring_dist(key, node, space);
        let ccw = u64::from(d != 0 && clockwise_dist(key, node, space) != d);
        2 * d + ccw
    }

    /// Pastry key assignment: the node *numerically closest* to the key
    /// (ties towards the successor side, matching the Cycloid/leaf-set
    /// convention).
    #[must_use]
    pub fn owner_of_point(&self, key: u64) -> Option<u64> {
        // Only the two ring neighbours of the key can be closest.
        let above = self.members.successor_of(key);
        let below = self.members.predecessor_of(key);
        [above, below]
            .into_iter()
            .flatten()
            .min_by_key(|&id| self.key_metric(key, id))
    }

    /// Resolves one routing-table entry: a live node sharing `row` digits
    /// of prefix with `id` and having digit `col` at position `row`,
    /// choosing the numerically closest such node to `id` (a locality
    /// metric would pick by proximity; hop counts are unaffected).
    #[must_use]
    pub fn resolve_entry(&self, id: u64, row: u32, col: u32) -> Option<u64> {
        let c = self.config;
        if self.config.digit(id, row) == col {
            return None; // own digit: the row "points at" the node itself
        }
        let digit_shift = c.bits - (row + 1) * c.digit_bits;
        let prefix_mask = if row == 0 {
            0
        } else {
            !((1u64 << (c.bits - row * c.digit_bits)) - 1)
        };
        let base = (id & prefix_mask) | (u64::from(col) << digit_shift);
        let top = base | ((1u64 << digit_shift) - 1);
        // Nearest to id within [base, top]; since id is outside the block,
        // the closest element is one of the block's ends.
        let first = self.members.first_in_range(base, top);
        let last = self.members.last_in_range(base, top);
        match (first, last) {
            (Some(f), Some(l)) => {
                if id < base {
                    Some(f)
                } else {
                    Some(l)
                }
            }
            (a, b) => a.or(b),
        }
    }

    /// Resolves the leaf set of `id`: the `|L|/2` nearest live smaller and
    /// larger identifiers on the ring.
    #[must_use]
    pub fn resolve_leafs(&self, id: u64) -> (LeafHalf, LeafHalf) {
        let half = self.config.leaf_set / 2;
        let mut smaller = LeafHalf::new();
        let mut larger = LeafHalf::new();
        if self.members.len() <= 1 {
            return (smaller, larger);
        }
        let mut cursor = id;
        for _ in 0..half.min(self.members.len() - 1) {
            let prev = self.members.predecessor_of(cursor).expect("non-empty");
            if prev == id {
                break;
            }
            smaller.push(prev);
            cursor = prev;
        }
        let mut cursor = id;
        for _ in 0..half.min(self.members.len() - 1) {
            let next = self.members.successor_after(cursor).expect("non-empty");
            if next == id {
                break;
            }
            larger.push(next);
            cursor = next;
        }
        (smaller, larger)
    }

    /// Recomputes every entry of one node.
    pub fn refresh_node(&mut self, id: u64) {
        let c = self.config;
        let mut table = vec![None; (c.digits() * c.base()) as usize];
        for row in 0..c.digits() {
            for col in 0..c.base() {
                table[(row * c.base() + col) as usize] = self.resolve_entry(id, row, col);
            }
        }
        let (smaller, larger) = self.resolve_leafs(id);
        let node = self.members.get_mut(id).expect("refresh of dead node");
        node.table = table;
        node.leaf_smaller = smaller;
        node.leaf_larger = larger;
    }

    /// Refreshes only the leaf set (what join/leave notifications repair).
    fn refresh_leafs(&mut self, id: u64) {
        let (smaller, larger) = self.resolve_leafs(id);
        let node = self.members.get_mut(id).expect("refresh of dead node");
        node.leaf_smaller = smaller;
        node.leaf_larger = larger;
    }

    /// Full stabilization.
    pub fn stabilize_all(&mut self) {
        let ids: Vec<u64> = self.ids().collect();
        for id in ids {
            self.refresh_node(id);
        }
    }

    /// Live nodes whose leaf sets reference position `id`.
    fn leaf_holders_of(&self, id: u64) -> Vec<u64> {
        let half = self.config.leaf_set / 2;
        let mut out = Vec::new();
        if self.members.is_empty() {
            return out;
        }
        let mut cursor = id;
        for _ in 0..half {
            match self.members.predecessor_of(cursor) {
                Some(p) if p != id && !out.contains(&p) => {
                    out.push(p);
                    cursor = p;
                }
                _ => break,
            }
        }
        let mut cursor = id;
        for _ in 0..half {
            match self.members.successor_after(cursor) {
                Some(n) if n != id && !out.contains(&n) => {
                    out.push(n);
                    cursor = n;
                }
                _ => break,
            }
        }
        out
    }

    /// Protocol join: the newcomer builds its state; its leaf-set
    /// neighbourhood learns of it. Routing tables elsewhere stay stale
    /// until stabilization.
    pub fn join_id(&mut self, id: u64) -> bool {
        if self.is_live(id) {
            return false;
        }
        self.members.insert(id, PastryNode::new(id, self.config));
        self.refresh_node(id);
        for nb in self.leaf_holders_of(id) {
            self.refresh_leafs(nb);
        }
        true
    }

    /// Join with a fresh identifier.
    pub fn join_random(&mut self) -> Option<u64> {
        if self.members.len() as u64 >= self.config.space() {
            return None;
        }
        loop {
            let id = self.members.next_in(self.config.space());
            if self.join_id(id) {
                return Some(id);
            }
        }
    }

    /// Graceful departure: the leaf-set neighbourhood repairs; routing
    /// tables elsewhere stay stale.
    pub fn leave(&mut self, id: u64) -> bool {
        if self.members.remove(id).is_none() {
            return false;
        }
        for nb in self.leaf_holders_of(id) {
            self.refresh_leafs(nb);
        }
        true
    }

    /// Ungraceful failure: no notifications at all.
    pub fn fail_node(&mut self, id: u64) -> bool {
        self.members.remove(id).is_some()
    }

    /// One lookup from `src` for ring key `key`: prefix routing with
    /// leaf-set fallback. Digit-correcting hops are tagged
    /// [`HopPhase::Finger`], leaf-set hops [`HopPhase::Successor`].
    pub fn route_to_point(&mut self, src: u64, key: u64) -> LookupTrace {
        walk_from(self, src, PastryWalk { key }, true)
    }

    /// Lookup by raw (pre-hash) key.
    pub fn route(&mut self, src: u64, raw_key: u64) -> LookupTrace {
        let key = self.key_of(raw_key);
        self.route_to_point(src, key)
    }
}

impl SimOverlay for PastryNetwork {
    type State = PastryNode;
    type Walk = PastryWalk;

    fn membership(&self) -> &Membership<PastryNode> {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership<PastryNode> {
        &mut self.members
    }

    fn label(&self) -> String {
        "Pastry".to_string()
    }

    fn degree_limit(&self) -> Option<usize> {
        None // O(log n) routing table
    }

    /// One message per distinct routing-table/leaf-set entry.
    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        self.members
            .get(node)
            .map_or(1, |s| (s.degree() as u64).max(1))
    }

    fn map_key(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key)
    }

    fn owner_token(&self, raw_key: u64) -> Option<NodeToken> {
        self.owner_of_point(self.key_of(raw_key))
    }

    fn hop_budget(&self) -> usize {
        8 * self.config.digits() as usize + 64
    }

    fn begin_walk(&self, _src: NodeToken, raw_key: u64) -> PastryWalk {
        PastryWalk {
            key: self.key_of(raw_key),
        }
    }

    fn walk_owner(&self, walk: &PastryWalk) -> Option<NodeToken> {
        self.owner_of_point(walk.key)
    }

    fn next_hop(&self, cur: NodeToken, walk: &mut PastryWalk) -> StepDecision {
        let c = self.config;
        let key = walk.key;
        let node = self.members.get(cur).expect("current node is live");
        let cur_metric = self.key_metric(key, cur);

        // Leaf-set candidates strictly closer to the key. Dead leaf
        // entries are dropped here (the leaf set is the termination
        // test's ground, not a contact attempt), so they cost no timeout.
        let mut leafs: Vec<(u64, u64)> = node
            .leafs()
            .filter(|&l| self.is_live(l))
            .map(|l| (self.key_metric(key, l), l))
            .filter(|&(m, _)| m < cur_metric)
            .collect();
        leafs.sort_unstable();
        leafs.dedup();

        // Termination: no live leaf is closer — this node is the
        // numerically closest.
        if leafs.is_empty() {
            return StepDecision::Terminate;
        }

        // Preferred hop: the routing-table entry for the first differing
        // digit ("forwards the query to a node which matches one more
        // digit"); a stale entry costs a timeout.
        let mut plan: Vec<(HopPhase, NodeToken)> = Vec::new();
        let row = c.shared_prefix(cur, key);
        if row < c.digits() {
            let col = c.digit(key, row);
            if let Some(entry) = node.table[(row * c.base() + col) as usize] {
                plan.push((HopPhase::Finger, entry));
            }
        }
        // Fallback ("the rare case"): any leaf numerically closer.
        plan.extend(leafs.iter().map(|&(_, l)| (HopPhase::Successor, l)));
        StepDecision::Forward(plan)
    }

    fn node_join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random()
    }

    fn node_leave(&mut self, node: NodeToken) -> bool {
        self.leave(node)
    }

    fn node_fail(&mut self, node: NodeToken) -> bool {
        self.fail_node(node)
    }

    fn stabilize_network(&mut self) {
        self.stabilize_all();
    }

    fn stabilize_one(&mut self, node: NodeToken) {
        if self.is_live(node) {
            self.refresh_node(node);
        }
    }

    fn state_heap_bytes(&self, state: &PastryNode) -> usize {
        // Leaf-set halves are inline; the prefix table is the per-node
        // heap payload.
        state.table.capacity() * std::mem::size_of::<Option<u64>>()
    }

    fn audit_network(&self, scope: dht_core::audit::AuditScope) -> dht_core::audit::AuditReport {
        dht_core::audit::StateAudit::audit(self, scope)
    }

    fn corrupt_network(
        &mut self,
        plan: &dht_core::corrupt::CorruptionPlan,
    ) -> dht_core::corrupt::CorruptionReport {
        self.corrupt(plan)
    }

    fn repair_step(&mut self, node: NodeToken) -> u64 {
        self.repair_one(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::lookup::LookupOutcome;
    use dht_core::rng::stream;
    use rand::Rng;

    #[test]
    fn digit_arithmetic() {
        let c = PastryConfig::new(8); // four base-4 digits
        assert_eq!(c.digits(), 4);
        assert_eq!(c.base(), 4);
        // 0b10_11_01_00: digits 2, 3, 1, 0.
        let id = 0b1011_0100;
        assert_eq!(c.digit(id, 0), 2);
        assert_eq!(c.digit(id, 1), 3);
        assert_eq!(c.digit(id, 2), 1);
        assert_eq!(c.digit(id, 3), 0);
        assert_eq!(c.shared_prefix(id, id), 4);
        assert_eq!(c.shared_prefix(0b1011_0100, 0b1011_1100), 2);
        assert_eq!(c.shared_prefix(0b0011_0100, 0b1011_0100), 0);
    }

    #[test]
    fn routing_table_entries_share_prefix_and_differ_next_digit() {
        let net = PastryNetwork::with_nodes(PastryConfig::new(12), 500, 1);
        let c = net.config();
        for id in net.ids().take(50) {
            let node = net.node(id).unwrap();
            for row in 0..c.digits() {
                for col in 0..c.base() {
                    if let Some(entry) = node.table[(row * c.base() + col) as usize] {
                        assert!(net.is_live(entry));
                        assert_eq!(c.shared_prefix(id, entry), row, "row {row} col {col}");
                        assert_eq!(c.digit(entry, row), col);
                    }
                }
            }
        }
    }

    #[test]
    fn all_lookups_resolve() {
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 400, 2);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(3, "pastry");
        for i in 0..2000 {
            let src = ids[i % ids.len()];
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let t = net.route(src, raw);
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            assert_eq!(t.timeouts, 0);
            assert_eq!(Some(t.terminal), net.owner_of_point(key));
        }
    }

    #[test]
    fn paths_are_logarithmic() {
        // O(log_{2^b} n) = log4(1024) = 5 digits to correct.
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(16), 1024, 4);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(5, "plen");
        let mut total = 0usize;
        for i in 0..2000 {
            total += net.route(ids[i % ids.len()], rng.gen()).path_len();
        }
        let mean = total as f64 / 2000.0;
        assert!(mean > 2.0 && mean < 9.0, "mean {mean} should be ~log4(n)");
    }

    #[test]
    fn graceful_departures_timeout_but_resolve() {
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 1024, 6);
        let mut rng = stream(7, "pfail");
        for id in net.ids().collect::<Vec<_>>() {
            if rng.gen_bool(0.3) {
                net.leave(id);
            }
        }
        let live: Vec<u64> = net.ids().collect();
        let mut timeouts = 0u32;
        for i in 0..1000 {
            let t = net.route(live[i % live.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            timeouts += t.timeouts;
        }
        assert!(timeouts > 0, "stale table entries must time out");
        net.stabilize_all();
        for i in 0..300 {
            let t = net.route(live[i % live.len()], rng.gen());
            assert_eq!(t.timeouts, 0);
        }
    }

    #[test]
    fn leaf_sets_are_ring_neighbors() {
        let net = PastryNetwork::with_nodes(PastryConfig::new(10), 100, 8);
        let ids: Vec<u64> = net.ids().collect();
        for (i, &id) in ids.iter().enumerate() {
            let node = net.node(id).unwrap();
            let succ = ids[(i + 1) % ids.len()];
            let pred = ids[(i + ids.len() - 1) % ids.len()];
            assert_eq!(node.leaf_larger.first(), Some(&succ), "node {id}");
            assert_eq!(node.leaf_smaller.first(), Some(&pred), "node {id}");
        }
    }

    #[test]
    fn degree_is_logarithmic_not_constant() {
        let net = PastryNetwork::with_nodes(PastryConfig::new(16), 1024, 9);
        let mean: f64 = net
            .ids()
            .map(|id| net.node(id).unwrap().degree() as f64)
            .sum::<f64>()
            / net.node_count() as f64;
        assert!(
            mean > 10.0,
            "Pastry keeps O(log n) state; mean degree {mean} too small"
        );
    }

    #[test]
    fn join_and_leave_keep_correctness() {
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 100, 10);
        let mut rng = stream(11, "pjoin");
        let mut joined = Vec::new();
        for _ in 0..20 {
            joined.push(net.join_random().unwrap());
        }
        for &j in &joined[..10] {
            assert!(net.leave(j));
        }
        let ids: Vec<u64> = net.ids().collect();
        for i in 0..500 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
        }
    }

    #[test]
    fn trait_roundtrip() {
        use dht_core::overlay::Overlay;
        let mut net: Box<dyn Overlay> =
            Box::new(PastryNetwork::with_nodes(PastryConfig::new(12), 150, 1));
        assert_eq!(net.name(), "Pastry");
        assert_eq!(net.degree_bound(), None);
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[5], 909);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(909));
    }

    #[test]
    fn key_counts_sum_matches() {
        use dht_core::overlay::key_counts;
        use dht_core::workload;
        let net = PastryNetwork::with_nodes(PastryConfig::new(12), 120, 2);
        let keys = workload::key_population(3_000, &mut stream(3, "pk"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 3_000);
    }

    #[test]
    fn churn_through_trait() {
        use dht_core::overlay::Overlay;
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 64, 4);
        let mut rng = stream(5, "pt");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 64);
    }
}
