//! The simulated Pastry network: digit arithmetic, routing-table and
//! leaf-set resolution, prefix routing, join/leave, and stabilization.

use std::collections::BTreeMap;
use std::collections::HashSet;

use dht_core::hash::{reduce, splitmix64, IdAllocator};
use dht_core::lookup::{HopPhase, LookupOutcome, LookupTrace};
use dht_core::ring::{clockwise_dist, ring_dist};

/// Configuration of a Pastry deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastryConfig {
    /// Total identifier bits; the ring has `2^bits` positions.
    pub bits: u32,
    /// Bits per digit (`b`; base `2^b` digits). Pastry's default is 4;
    /// the simulations use 2 to keep tables reasonable at small scales.
    pub digit_bits: u32,
    /// Leaf-set size `|L|` (half numerically smaller, half larger).
    pub leaf_set: usize,
}

impl PastryConfig {
    /// Standard configuration: base-4 digits (`b = 2`), `|L| = 8`.
    ///
    /// # Panics
    /// Panics unless `digit_bits` divides `bits`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        let config = Self {
            bits,
            digit_bits: 2,
            leaf_set: 8,
        };
        config.validate();
        config
    }

    fn validate(&self) {
        assert!(self.bits >= 1 && self.bits <= 63, "bits must be in [1, 63]");
        assert!(
            self.digit_bits >= 1 && self.bits.is_multiple_of(self.digit_bits),
            "digit_bits must divide bits"
        );
        assert!(
            self.leaf_set >= 2 && self.leaf_set.is_multiple_of(2),
            "leaf set must be even"
        );
    }

    /// Ring size `2^bits`.
    #[must_use]
    pub fn space(&self) -> u64 {
        1u64 << self.bits
    }

    /// Number of digits per identifier.
    #[must_use]
    pub fn digits(&self) -> u32 {
        self.bits / self.digit_bits
    }

    /// Digit alphabet size `2^b`.
    #[must_use]
    pub fn base(&self) -> u32 {
        1 << self.digit_bits
    }

    /// Extracts digit `row` (0 = most significant) of `id`.
    #[must_use]
    pub fn digit(&self, id: u64, row: u32) -> u32 {
        debug_assert!(row < self.digits());
        let shift = self.bits - (row + 1) * self.digit_bits;
        ((id >> shift) & u64::from(self.base() - 1)) as u32
    }

    /// Length of the common digit prefix of two identifiers.
    #[must_use]
    pub fn shared_prefix(&self, a: u64, b: u64) -> u32 {
        (0..self.digits())
            .take_while(|&row| self.digit(a, row) == self.digit(b, row))
            .count() as u32
    }
}

/// Routing state of one Pastry node.
#[derive(Debug, Clone)]
pub struct PastryNode {
    /// This node's identifier.
    pub id: u64,
    /// `table[row * base + col]`: a node sharing the first `row` digits
    /// with this node and having digit `col` at position `row`. `None`
    /// where no such node is live (or where `col` is the node's own
    /// digit).
    pub table: Vec<Option<u64>>,
    /// Numerically smaller leaf-set half, nearest first.
    pub leaf_smaller: Vec<u64>,
    /// Numerically larger leaf-set half, nearest first.
    pub leaf_larger: Vec<u64>,
    /// Lookup messages received since the last reset.
    pub query_load: u64,
}

impl PastryNode {
    fn new(id: u64, config: PastryConfig) -> Self {
        Self {
            id,
            table: vec![None; (config.digits() * config.base()) as usize],
            leaf_smaller: Vec::new(),
            leaf_larger: Vec::new(),
            query_load: 0,
        }
    }

    /// All leaf-set entries.
    pub fn leafs(&self) -> impl Iterator<Item = u64> + '_ {
        self.leaf_smaller.iter().chain(&self.leaf_larger).copied()
    }

    /// Distinct non-self contacts currently held.
    #[must_use]
    pub fn degree(&self) -> usize {
        let mut all: Vec<u64> = self
            .table
            .iter()
            .flatten()
            .copied()
            .chain(self.leafs())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.retain(|&x| x != self.id);
        all.len()
    }
}

/// A simulated Pastry network.
#[derive(Debug, Clone)]
pub struct PastryNetwork {
    config: PastryConfig,
    nodes: BTreeMap<u64, PastryNode>,
    alloc: IdAllocator,
}

impl PastryNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new(config: PastryConfig, seed: u64) -> Self {
        config.validate();
        Self {
            config,
            nodes: BTreeMap::new(),
            alloc: IdAllocator::new(seed),
        }
    }

    /// Builds a stabilized network of `count` uniformly placed nodes.
    #[must_use]
    pub fn with_nodes(config: PastryConfig, count: usize, seed: u64) -> Self {
        let mut net = Self::new(config, seed);
        assert!(
            count as u64 <= config.space(),
            "space too small for {count} nodes"
        );
        while net.nodes.len() < count {
            let id = net.alloc.next_in(config.space());
            net.nodes
                .entry(id)
                .or_insert_with(|| PastryNode::new(id, config));
        }
        net.stabilize_all();
        net
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> PastryConfig {
        self.config
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff `id` is live.
    #[must_use]
    pub fn is_live(&self, id: u64) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Live node identifiers in ring order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes.keys().copied()
    }

    /// Read access to one node.
    #[must_use]
    pub fn node(&self, id: u64) -> Option<&PastryNode> {
        self.nodes.get(&id)
    }

    /// Maps a raw key onto the ring.
    #[must_use]
    pub fn key_of(&self, raw_key: u64) -> u64 {
        reduce(splitmix64(raw_key), self.config.space())
    }

    /// Pastry key assignment: the node *numerically closest* to the key
    /// (ties towards the successor side, matching the Cycloid/leaf-set
    /// convention).
    #[must_use]
    pub fn owner_of_point(&self, key: u64) -> Option<u64> {
        if self.nodes.is_empty() {
            return None;
        }
        let space = self.config.space();
        self.nodes
            .keys()
            .copied()
            // Only the ring neighbours of the key can be closest.
            .filter(|&id| {
                let above = self.nodes.range(key..).next().map(|(&i, _)| i);
                let below = self.nodes.range(..key).next_back().map(|(&i, _)| i);
                Some(id) == above
                    || Some(id) == below
                    || Some(id) == self.nodes.range(..).next().map(|(&i, _)| i)
                    || Some(id) == self.nodes.range(..).next_back().map(|(&i, _)| i)
            })
            .min_by_key(|&id| {
                let d = ring_dist(key, id, space);
                let ccw = u64::from(d != 0 && clockwise_dist(key, id, space) != d);
                2 * d + ccw
            })
    }

    /// Resolves one routing-table entry: a live node sharing `row` digits
    /// of prefix with `id` and having digit `col` at position `row`,
    /// choosing the numerically closest such node to `id` (a locality
    /// metric would pick by proximity; hop counts are unaffected).
    #[must_use]
    pub fn resolve_entry(&self, id: u64, row: u32, col: u32) -> Option<u64> {
        let c = self.config;
        if self.config.digit(id, row) == col {
            return None; // own digit: the row "points at" the node itself
        }
        let digit_shift = c.bits - (row + 1) * c.digit_bits;
        let prefix_mask = if row == 0 {
            0
        } else {
            !((1u64 << (c.bits - row * c.digit_bits)) - 1)
        };
        let base = (id & prefix_mask) | (u64::from(col) << digit_shift);
        let top = base | ((1u64 << digit_shift) - 1);
        // Nearest to id within [base, top]; since id is outside the block,
        // the closest element is one of the block's ends.
        let first = self.nodes.range(base..=top).next().map(|(&i, _)| i);
        let last = self.nodes.range(base..=top).next_back().map(|(&i, _)| i);
        match (first, last) {
            (Some(f), Some(l)) => {
                if id < base {
                    Some(f)
                } else {
                    Some(l)
                }
            }
            (a, b) => a.or(b),
        }
    }

    /// Resolves the leaf set of `id`: the `|L|/2` nearest live smaller and
    /// larger identifiers on the ring.
    #[must_use]
    pub fn resolve_leafs(&self, id: u64) -> (Vec<u64>, Vec<u64>) {
        let half = self.config.leaf_set / 2;
        let mut smaller = Vec::with_capacity(half);
        let mut larger = Vec::with_capacity(half);
        if self.nodes.len() <= 1 {
            return (smaller, larger);
        }
        let mut cursor = id;
        for _ in 0..half.min(self.nodes.len() - 1) {
            let prev = self
                .nodes
                .range(..cursor)
                .next_back()
                .or_else(|| self.nodes.range(..).next_back())
                .map(|(&i, _)| i)
                .expect("non-empty");
            if prev == id {
                break;
            }
            smaller.push(prev);
            cursor = prev;
        }
        let mut cursor = id;
        for _ in 0..half.min(self.nodes.len() - 1) {
            let next = self
                .nodes
                .range(cursor + 1..)
                .next()
                .or_else(|| self.nodes.range(..).next())
                .map(|(&i, _)| i)
                .expect("non-empty");
            if next == id {
                break;
            }
            larger.push(next);
            cursor = next;
        }
        (smaller, larger)
    }

    /// Recomputes every entry of one node.
    pub fn refresh_node(&mut self, id: u64) {
        let c = self.config;
        let mut table = vec![None; (c.digits() * c.base()) as usize];
        for row in 0..c.digits() {
            for col in 0..c.base() {
                table[(row * c.base() + col) as usize] = self.resolve_entry(id, row, col);
            }
        }
        let (smaller, larger) = self.resolve_leafs(id);
        let node = self.nodes.get_mut(&id).expect("refresh of dead node");
        node.table = table;
        node.leaf_smaller = smaller;
        node.leaf_larger = larger;
    }

    /// Refreshes only the leaf set (what join/leave notifications repair).
    fn refresh_leafs(&mut self, id: u64) {
        let (smaller, larger) = self.resolve_leafs(id);
        let node = self.nodes.get_mut(&id).expect("refresh of dead node");
        node.leaf_smaller = smaller;
        node.leaf_larger = larger;
    }

    /// Full stabilization.
    pub fn stabilize_all(&mut self) {
        let ids: Vec<u64> = self.ids().collect();
        for id in ids {
            self.refresh_node(id);
        }
    }

    /// Live nodes whose leaf sets reference position `id`.
    fn leaf_holders_of(&self, id: u64) -> Vec<u64> {
        let half = self.config.leaf_set / 2;
        let mut out = Vec::new();
        let mut cursor = id;
        for _ in 0..half {
            match self
                .nodes
                .range(..cursor)
                .next_back()
                .or_else(|| self.nodes.range(..).next_back())
                .map(|(&i, _)| i)
            {
                Some(p) if p != id && !out.contains(&p) => {
                    out.push(p);
                    cursor = p;
                }
                _ => break,
            }
        }
        let mut cursor = id;
        for _ in 0..half {
            match self
                .nodes
                .range(cursor + 1..)
                .next()
                .or_else(|| self.nodes.range(..).next())
                .map(|(&i, _)| i)
            {
                Some(n) if n != id && !out.contains(&n) => {
                    out.push(n);
                    cursor = n;
                }
                _ => break,
            }
        }
        out
    }

    /// Protocol join: the newcomer builds its state; its leaf-set
    /// neighbourhood learns of it. Routing tables elsewhere stay stale
    /// until stabilization.
    pub fn join_id(&mut self, id: u64) -> bool {
        if self.is_live(id) {
            return false;
        }
        self.nodes.insert(id, PastryNode::new(id, self.config));
        self.refresh_node(id);
        for nb in self.leaf_holders_of(id) {
            self.refresh_leafs(nb);
        }
        true
    }

    /// Join with a fresh identifier.
    pub fn join_random(&mut self) -> Option<u64> {
        if self.nodes.len() as u64 >= self.config.space() {
            return None;
        }
        loop {
            let id = self.alloc.next_in(self.config.space());
            if self.join_id(id) {
                return Some(id);
            }
        }
    }

    /// Graceful departure: the leaf-set neighbourhood repairs; routing
    /// tables elsewhere stay stale.
    pub fn leave(&mut self, id: u64) -> bool {
        if self.nodes.remove(&id).is_none() {
            return false;
        }
        for nb in self.leaf_holders_of(id) {
            self.refresh_leafs(nb);
        }
        true
    }

    /// Ungraceful failure: no notifications at all.
    pub fn fail_node(&mut self, id: u64) -> bool {
        self.nodes.remove(&id).is_some()
    }

    fn hop_budget(&self) -> usize {
        8 * self.config.digits() as usize + 64
    }

    /// One lookup from `src` for ring key `key`: prefix routing with
    /// leaf-set fallback. Digit-correcting hops are tagged
    /// [`HopPhase::Finger`], leaf-set hops [`HopPhase::Successor`].
    pub fn route_to_point(&mut self, src: u64, key: u64) -> LookupTrace {
        assert!(self.is_live(src), "lookup source {src} is not live");
        let c = self.config;
        let space = c.space();
        let mut cur = src;
        let mut hops = Vec::new();
        let mut timeouts = 0u32;
        self.count_query(cur);

        let metric = |node: u64| {
            let d = ring_dist(key, node, space);
            let ccw = u64::from(d != 0 && clockwise_dist(key, node, space) != d);
            2 * d + ccw
        };

        let outcome = loop {
            if hops.len() >= self.hop_budget() {
                break LookupOutcome::HopBudgetExhausted;
            }
            let node = self.nodes.get(&cur).expect("current node is live");
            let cur_metric = metric(cur);

            // Leaf-set candidates strictly closer to the key.
            let mut leafs: Vec<(u64, u64)> = node
                .leafs()
                .filter(|&l| self.is_live(l))
                .map(|l| (metric(l), l))
                .filter(|&(m, _)| m < cur_metric)
                .collect();
            leafs.sort_unstable();
            leafs.dedup();

            // Termination: no live leaf is closer — this node is the
            // numerically closest.
            if leafs.is_empty() {
                break match self.owner_of_point(key) {
                    Some(owner) if owner == cur => LookupOutcome::Found,
                    Some(_) => LookupOutcome::WrongOwner,
                    None => LookupOutcome::Stuck,
                };
            }

            // Preferred hop: the routing-table entry for the first
            // differing digit ("forwards the query to a node which matches
            // one more digit").
            let mut plan: Vec<(HopPhase, u64)> = Vec::new();
            let row = c.shared_prefix(cur, key);
            if row < c.digits() {
                let col = c.digit(key, row);
                if let Some(entry) = node.table[(row * c.base() + col) as usize] {
                    plan.push((HopPhase::Finger, entry));
                }
            }
            // Fallback ("the rare case"): any leaf numerically closer.
            plan.extend(leafs.iter().map(|&(_, l)| (HopPhase::Successor, l)));

            let mut next = None;
            let mut dead_seen: HashSet<u64> = HashSet::new();
            for (phase, cand) in plan {
                if cand == cur {
                    continue;
                }
                if !self.is_live(cand) {
                    if dead_seen.insert(cand) {
                        timeouts += 1;
                    }
                    continue;
                }
                next = Some((phase, cand));
                break;
            }
            match next {
                Some((phase, cand)) => {
                    hops.push(phase);
                    cur = cand;
                    self.count_query(cur);
                }
                None => {
                    break match self.owner_of_point(key) {
                        Some(owner) if owner == cur => LookupOutcome::Found,
                        _ => LookupOutcome::Stuck,
                    }
                }
            }
        };

        LookupTrace {
            hops,
            timeouts,
            outcome,
            terminal: cur,
        }
    }

    /// Lookup by raw (pre-hash) key.
    pub fn route(&mut self, src: u64, raw_key: u64) -> LookupTrace {
        let key = self.key_of(raw_key);
        self.route_to_point(src, key)
    }

    pub(crate) fn count_query(&mut self, id: u64) {
        if let Some(n) = self.nodes.get_mut(&id) {
            n.query_load += 1;
        }
    }

    /// Per-node query loads in ring order.
    #[must_use]
    pub fn query_loads(&self) -> Vec<u64> {
        self.nodes.values().map(|n| n.query_load).collect()
    }

    /// Zeroes all query-load counters.
    pub fn reset_query_loads(&mut self) {
        for n in self.nodes.values_mut() {
            n.query_load = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::rng::stream;
    use rand::Rng;

    #[test]
    fn digit_arithmetic() {
        let c = PastryConfig::new(8); // four base-4 digits
        assert_eq!(c.digits(), 4);
        assert_eq!(c.base(), 4);
        // 0b10_11_01_00: digits 2, 3, 1, 0.
        let id = 0b1011_0100;
        assert_eq!(c.digit(id, 0), 2);
        assert_eq!(c.digit(id, 1), 3);
        assert_eq!(c.digit(id, 2), 1);
        assert_eq!(c.digit(id, 3), 0);
        assert_eq!(c.shared_prefix(id, id), 4);
        assert_eq!(c.shared_prefix(0b1011_0100, 0b1011_1100), 2);
        assert_eq!(c.shared_prefix(0b0011_0100, 0b1011_0100), 0);
    }

    #[test]
    fn routing_table_entries_share_prefix_and_differ_next_digit() {
        let net = PastryNetwork::with_nodes(PastryConfig::new(12), 500, 1);
        let c = net.config();
        for id in net.ids().take(50) {
            let node = net.node(id).unwrap();
            for row in 0..c.digits() {
                for col in 0..c.base() {
                    if let Some(entry) = node.table[(row * c.base() + col) as usize] {
                        assert!(net.is_live(entry));
                        assert_eq!(c.shared_prefix(id, entry), row, "row {row} col {col}");
                        assert_eq!(c.digit(entry, row), col);
                    }
                }
            }
        }
    }

    #[test]
    fn all_lookups_resolve() {
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 400, 2);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(3, "pastry");
        for i in 0..2000 {
            let src = ids[i % ids.len()];
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let t = net.route(src, raw);
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            assert_eq!(t.timeouts, 0);
            assert_eq!(Some(t.terminal), net.owner_of_point(key));
        }
    }

    #[test]
    fn paths_are_logarithmic() {
        // O(log_{2^b} n) = log4(1024) = 5 digits to correct.
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(16), 1024, 4);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(5, "plen");
        let mut total = 0usize;
        for i in 0..2000 {
            total += net.route(ids[i % ids.len()], rng.gen()).path_len();
        }
        let mean = total as f64 / 2000.0;
        assert!(mean > 2.0 && mean < 9.0, "mean {mean} should be ~log4(n)");
    }

    #[test]
    fn graceful_departures_timeout_but_resolve() {
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 1024, 6);
        let mut rng = stream(7, "pfail");
        for id in net.ids().collect::<Vec<_>>() {
            if rng.gen_bool(0.3) {
                net.leave(id);
            }
        }
        let live: Vec<u64> = net.ids().collect();
        let mut timeouts = 0u32;
        for i in 0..1000 {
            let t = net.route(live[i % live.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            timeouts += t.timeouts;
        }
        assert!(timeouts > 0, "stale table entries must time out");
        net.stabilize_all();
        for i in 0..300 {
            let t = net.route(live[i % live.len()], rng.gen());
            assert_eq!(t.timeouts, 0);
        }
    }

    #[test]
    fn leaf_sets_are_ring_neighbors() {
        let net = PastryNetwork::with_nodes(PastryConfig::new(10), 100, 8);
        let ids: Vec<u64> = net.ids().collect();
        for (i, &id) in ids.iter().enumerate() {
            let node = net.node(id).unwrap();
            let succ = ids[(i + 1) % ids.len()];
            let pred = ids[(i + ids.len() - 1) % ids.len()];
            assert_eq!(node.leaf_larger.first(), Some(&succ), "node {id}");
            assert_eq!(node.leaf_smaller.first(), Some(&pred), "node {id}");
        }
    }

    #[test]
    fn degree_is_logarithmic_not_constant() {
        let net = PastryNetwork::with_nodes(PastryConfig::new(16), 1024, 9);
        let mean: f64 = net
            .ids()
            .map(|id| net.node(id).unwrap().degree() as f64)
            .sum::<f64>()
            / net.node_count() as f64;
        assert!(
            mean > 10.0,
            "Pastry keeps O(log n) state; mean degree {mean} too small"
        );
    }

    #[test]
    fn join_and_leave_keep_correctness() {
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 100, 10);
        let mut rng = stream(11, "pjoin");
        let mut joined = Vec::new();
        for _ in 0..20 {
            joined.push(net.join_random().unwrap());
        }
        for &j in &joined[..10] {
            assert!(net.leave(j));
        }
        let ids: Vec<u64> = net.ids().collect();
        for i in 0..500 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
        }
    }
}
