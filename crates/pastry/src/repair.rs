//! Corruption and self-stabilizing repair of Pastry routing state.
//!
//! Maps the shared strategy catalogue ([`CorruptionStrategy`]) onto
//! Pastry's state — the prefix routing table and the two leaf-set
//! halves — and implements one node's repair step as an audited
//! recompute from live membership ([`PastryNetwork::refresh_node`] plus
//! a before/after entry diff). Populated table slots are the corruption
//! surface (own-digit slots are structurally `None` and stay that way,
//! so the `pastry/table-shape` invariant keeps auditing shape, not
//! damage). Repair is an exact no-op on healthy nodes and consumes no
//! RNG draws.

use dht_core::corrupt::{CorruptionPlan, CorruptionReport, CorruptionStrategy};

use crate::network::{PastryNetwork, PastryNode};

const SALT_TABLE: u64 = 0x1000;
const SALT_LEAF_SMALLER: u64 = 0x100;
const SALT_LEAF_LARGER: u64 = 0x200;
const SALT_ATTACKER: u64 = 0xa77a;

/// Entries on which two states differ (per table slot and per leaf
/// position; a leaf half that changed length counts the longer side).
fn diff_count(a: &PastryNode, b: &PastryNode) -> u64 {
    let mut n = a.table.iter().zip(&b.table).filter(|(x, y)| x != y).count() as u64;
    for (x, y) in [
        (&a.leaf_smaller, &b.leaf_smaller),
        (&a.leaf_larger, &b.leaf_larger),
    ] {
        let common = x.len().min(y.len());
        n += (x.len().max(y.len()) - common) as u64;
        n += x.as_slice()[..common]
            .iter()
            .zip(&y.as_slice()[..common])
            .filter(|(p, q)| p != q)
            .count() as u64;
    }
    n
}

impl PastryNetwork {
    /// Applies a seeded corruption plan (see [`dht_core::corrupt`]) to
    /// the network's routing state. Membership and query loads stay
    /// untouched.
    pub fn corrupt(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        let live: Vec<u64> = self.ids().collect();
        let victims = plan.victims(&live);
        let attacker = plan.pick(SALT_ATTACKER, 0, &live);
        let space = self.config().space();
        let mut report = CorruptionReport::default();
        for &id in &victims {
            let before = self.node(id).expect("victim is live").clone();
            let mut next = before.clone();
            match plan.strategy {
                CorruptionStrategy::RandomizeLinks => {
                    for (i, slot) in next.table.iter_mut().enumerate() {
                        if slot.is_some() {
                            *slot = plan.pick(id, SALT_TABLE + i as u64, &live).or(*slot);
                        }
                    }
                    for (i, l) in next.leaf_smaller.as_mut_slice().iter_mut().enumerate() {
                        if let Some(v) = plan.pick(id, SALT_LEAF_SMALLER + i as u64, &live) {
                            *l = v;
                        }
                    }
                    for (i, l) in next.leaf_larger.as_mut_slice().iter_mut().enumerate() {
                        if let Some(v) = plan.pick(id, SALT_LEAF_LARGER + i as u64, &live) {
                            *l = v;
                        }
                    }
                }
                CorruptionStrategy::GhostLinks => {
                    let is_live = |v: u64| live.binary_search(&v).is_ok();
                    for (i, slot) in next.table.iter_mut().enumerate() {
                        if slot.is_some() {
                            *slot = plan
                                .ghost(id, SALT_TABLE + i as u64, space, is_live)
                                .or(*slot);
                        }
                    }
                    for (i, l) in next.leaf_smaller.as_mut_slice().iter_mut().enumerate() {
                        if let Some(g) =
                            plan.ghost(id, SALT_LEAF_SMALLER + i as u64, space, is_live)
                        {
                            *l = g;
                        }
                    }
                    for (i, l) in next.leaf_larger.as_mut_slice().iter_mut().enumerate() {
                        if let Some(g) = plan.ghost(id, SALT_LEAF_LARGER + i as u64, space, is_live)
                        {
                            *l = g;
                        }
                    }
                }
                CorruptionStrategy::CrossWireLeafSets => {
                    // The literal cross-wire: smaller and larger halves
                    // trade places, breaking the leaf set's ring-order
                    // invariant while every entry stays individually live.
                    std::mem::swap(&mut next.leaf_smaller, &mut next.leaf_larger);
                }
                CorruptionStrategy::ZeroLinks => {
                    for slot in next.table.iter_mut() {
                        *slot = None;
                    }
                    next.leaf_smaller.clear();
                    next.leaf_larger.clear();
                }
                CorruptionStrategy::EclipseRegion => {
                    if let Some(attacker) = attacker {
                        for slot in next.table.iter_mut() {
                            if slot.is_some() {
                                *slot = Some(attacker);
                            }
                        }
                        for l in next.leaf_smaller.as_mut_slice() {
                            *l = attacker;
                        }
                        for l in next.leaf_larger.as_mut_slice() {
                            *l = attacker;
                        }
                    }
                }
            }
            let mutated = diff_count(&before, &next);
            *self.node_mut(id).expect("victim is live") = next;
            report.note(mutated);
        }
        report
    }

    /// One node's repair step: recompute the full prefix table and both
    /// leaf halves from live membership; returns entries rewritten (0 on
    /// a healthy node). Ignores dead tokens.
    pub fn repair_one(&mut self, id: u64) -> u64 {
        if !self.is_live(id) {
            return 0;
        }
        let before = self.node(id).expect("live node has state").clone();
        self.refresh_node(id);
        diff_count(&before, self.node(id).expect("still live"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PastryConfig;
    use dht_core::audit::{AuditScope, StateAudit};

    fn net(n: usize) -> PastryNetwork {
        PastryNetwork::with_nodes(PastryConfig::new(12), n, 42)
    }

    fn repair_sweep(net: &mut PastryNetwork) -> u64 {
        let ids: Vec<u64> = net.ids().collect();
        ids.into_iter().map(|id| net.repair_one(id)).sum()
    }

    #[test]
    fn repair_is_a_noop_on_a_healthy_network() {
        let mut n = net(80);
        assert!(n.audit(AuditScope::Full).is_clean());
        assert_eq!(repair_sweep(&mut n), 0);
    }

    #[test]
    fn every_strategy_is_detected_and_repaired() {
        for strategy in CorruptionStrategy::ALL {
            let mut n = net(80);
            let plan = CorruptionPlan::new(strategy, 0.5, 9);
            let report = n.corrupt(&plan);
            assert_eq!(report.targeted_nodes, 40, "{strategy:?}");
            assert!(report.corrupted_nodes > 0, "{strategy:?} did no damage");
            assert!(
                !n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} evaded the audit"
            );
            repair_sweep(&mut n);
            assert!(
                n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} not repaired: {}",
                n.audit(AuditScope::Full)
            );
            assert_eq!(
                repair_sweep(&mut n),
                0,
                "{strategy:?} repair not idempotent"
            );
        }
    }
}
