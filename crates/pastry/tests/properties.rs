//! Property-based tests of Pastry's prefix-routing invariants.

use dht_core::lookup::{HopPhase, LookupOutcome};
use dht_core::rng::stream;
use pastry::{PastryConfig, PastryNetwork};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn table_entries_satisfy_their_definition(seed in any::<u64>(), count in 2usize..150) {
        let net = PastryNetwork::with_nodes(PastryConfig::new(12), count, seed);
        let c = net.config();
        for id in net.ids() {
            let node = net.node(id).unwrap();
            for row in 0..c.digits() {
                for col in 0..c.base() {
                    let entry = node.table[(row * c.base() + col) as usize];
                    if let Some(e) = entry {
                        prop_assert!(net.is_live(e));
                        prop_assert_eq!(c.shared_prefix(id, e), row);
                        prop_assert_eq!(c.digit(e, row), col);
                    } else {
                        // Empty cells are either the node's own digit or a
                        // genuinely unpopulated prefix block.
                        if c.digit(id, row) != col {
                            prop_assert_eq!(
                                net.resolve_entry(id, row, col),
                                None,
                                "cell ({},{}) of {} wrongly empty",
                                row,
                                col,
                                id
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn each_finger_hop_extends_the_shared_prefix(seed in any::<u64>(), count in 8usize..200) {
        // The defining property of prefix routing: every table-driven hop
        // matches at least one more digit of the key.
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), count, seed);
        let c = net.config();
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(seed, "pastry-prop");
        for i in 0..10 {
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let t = net.route(ids[i % ids.len()], raw);
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
            // Total digit-correcting hops never exceed the digit count.
            let finger_hops = t.hops_in_phase(HopPhase::Finger);
            prop_assert!(
                finger_hops as u32 <= c.digits(),
                "{finger_hops} digit hops for key {key}"
            );
        }
    }

    #[test]
    fn owner_is_numerically_closest(seed in any::<u64>(), count in 2usize..100, key in any::<u64>()) {
        let net = PastryNetwork::with_nodes(PastryConfig::new(12), count, seed);
        let k = net.key_of(key);
        let space = 1u64 << 12;
        let owner = net.owner_of_point(k).unwrap();
        let owner_dist = dht_core::ring::ring_dist(k, owner, space);
        for id in net.ids() {
            prop_assert!(
                dht_core::ring::ring_dist(k, id, space) >= owner_dist,
                "{id} closer to {k} than owner {owner}"
            );
        }
    }

    #[test]
    fn graceful_churn_keeps_lookups_correct(seed in any::<u64>(), leaves in 0usize..30) {
        let mut net = PastryNetwork::with_nodes(PastryConfig::new(12), 100, seed);
        let mut rng = stream(seed, "pastry-churn");
        for _ in 0..leaves {
            if net.node_count() > 4 {
                let ids: Vec<u64> = net.ids().collect();
                net.leave(ids[(rng.gen::<u64>() % ids.len() as u64) as usize]);
            }
        }
        let ids: Vec<u64> = net.ids().collect();
        for i in 0..15 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }
}
