//! Conformance audit: checks every node's ring pointers, successor list,
//! and finger table against the live membership.
//!
//! The graceful join/leave protocol notifies exactly the ring
//! neighbourhood, so the predecessor pointer and successor list are always
//! correct and are checked at [`AuditScope::Online`]; finger tables are
//! only repaired by stabilization and are checked at [`AuditScope::Full`].

use dht_core::audit::{AuditReport, AuditScope, StateAudit};
use dht_core::sim::SimOverlay;

use crate::network::ChordNetwork;

impl StateAudit for ChordNetwork {
    fn audit(&self, scope: AuditScope) -> AuditReport {
        let mut report = AuditReport::new(self.label(), scope);
        let config = self.config();
        let space = config.space();
        let r = config.successor_list;
        for id in self.ids() {
            report.note_checked(1);
            let node = self.node(id).expect("live id");
            report.check_eq(id, "chord/node-id", &node.id, &id);

            // Ring pointers: repaired eagerly on every graceful join/leave.
            let pred = self.predecessor_of_point(id).expect("non-empty ring");
            report.check_eq(id, "chord/predecessor", &node.predecessor, &pred);
            let mut expected = crate::node::SuccessorList::new();
            let mut cursor = id;
            for _ in 0..r {
                let s = self
                    .successor_of_point((cursor + 1) % space)
                    .expect("non-empty ring");
                expected.push(s);
                cursor = s;
            }
            report.check_eq(id, "chord/successor-list", &node.successors, &expected);

            // Fingers: `fingers[i] = successor(id + 2^i)`, lazily repaired.
            if scope == AuditScope::Full {
                report.check(
                    id,
                    "chord/finger-table",
                    node.fingers.len() == config.bits as usize,
                    || format!("{} fingers, expected {}", node.fingers.len(), config.bits),
                );
                for (i, &finger) in node.fingers.iter().enumerate() {
                    let target = (id + (1u64 << i)) % space;
                    let expect = self.successor_of_point(target).expect("non-empty ring");
                    report.check(id, "chord/finger-table", finger == expect, || {
                        format!("finger[{i}] = {finger}, expected successor({target}) = {expect}")
                    });
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ChordConfig;

    fn ring(n: usize) -> ChordNetwork {
        ChordNetwork::with_nodes(ChordConfig::new(10), n, 11)
    }

    #[test]
    fn stabilized_ring_is_fully_clean() {
        let net = ring(90);
        let report = net.audit(AuditScope::Full);
        assert_eq!(report.checked_nodes(), 90);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn ring_pointers_survive_graceful_churn_without_stabilization() {
        let mut net = ring(64);
        for step in 0..30 {
            if step % 3 == 0 {
                let victim = net.ids().nth(step % net.node_count()).unwrap();
                net.leave(victim);
            } else {
                net.join_random();
            }
            let report = net.audit(AuditScope::Online);
            assert!(report.is_clean(), "after step {step}: {report}");
        }
    }

    #[test]
    fn corrupted_finger_is_caught_by_name() {
        let mut net = ring(90);
        let id = net.ids().next().unwrap();
        let wrong = (id + 1) % net.config().space();
        net.node_mut(id).unwrap().fingers[5] = wrong;
        let report = net.audit(AuditScope::Full);
        assert!(
            report.violated_invariants().contains(&"chord/finger-table"),
            "{report}"
        );
        // Fingers are lazily stabilized: the online audit ignores them.
        assert!(net.audit(AuditScope::Online).is_clean());
    }

    #[test]
    fn corrupted_successor_list_is_caught_online() {
        let mut net = ring(90);
        let id = net.ids().next().unwrap();
        net.node_mut(id).unwrap().successors[0] = id;
        let report = net.audit(AuditScope::Online);
        assert!(
            report
                .violated_invariants()
                .contains(&"chord/successor-list"),
            "{report}"
        );
    }
}
