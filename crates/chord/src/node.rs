//! Per-node Chord state.

use dht_core::inline::InlineVec;

/// Fixed-capacity successor list. The harness runs Chord with the
/// Koorde-parity list length of 3; four inline slots keep the list
/// inside the membership slab (the O(log n) finger table stays heap
/// allocated).
pub type SuccessorList = InlineVec<u64, 4>;

/// Routing state of one Chord node.
///
/// All pointers are node identifiers on the `2^bits` ring; they may be
/// stale (pointing at departed nodes) until stabilization refreshes them.
#[derive(Debug, Clone)]
pub struct ChordNode {
    /// This node's ring identifier.
    pub id: u64,
    /// Immediate predecessor on the ring.
    pub predecessor: u64,
    /// Successor list: the `r` nodes immediately following this node,
    /// nearest first. `successors[0]` is *the* successor.
    pub successors: SuccessorList,
    /// Finger table: `fingers[i]` is `successor(id + 2^i)`.
    pub fingers: Vec<u64>,
}

impl ChordNode {
    /// Fresh state; pointers initially self-referential (a lone node is its
    /// own successor and predecessor).
    #[must_use]
    pub fn new(id: u64, bits: u32, succ_list_len: usize) -> Self {
        Self {
            id,
            predecessor: id,
            successors: SuccessorList::repeat(id, succ_list_len),
            fingers: vec![id; bits as usize],
        }
    }

    /// The primary successor.
    #[must_use]
    pub fn successor(&self) -> u64 {
        self.successors[0]
    }

    /// Distinct non-self entries currently held (the node's actual degree).
    #[must_use]
    pub fn degree(&self) -> usize {
        let mut all: Vec<u64> = self
            .successors
            .iter()
            .chain(self.fingers.iter())
            .copied()
            .chain(std::iter::once(self.predecessor))
            .collect();
        all.sort_unstable();
        all.dedup();
        all.retain(|&x| x != self.id);
        all.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_node_points_at_itself() {
        let n = ChordNode::new(5, 8, 3);
        assert_eq!(n.successor(), 5);
        assert_eq!(n.predecessor, 5);
        assert_eq!(n.degree(), 0);
        assert_eq!(n.fingers.len(), 8);
        assert_eq!(n.successors.len(), 3);
    }

    #[test]
    fn degree_counts_distinct_contacts() {
        let mut n = ChordNode::new(0, 4, 2);
        n.successors = vec![3, 7].into();
        n.fingers = vec![3, 3, 7, 9];
        n.predecessor = 12;
        assert_eq!(n.degree(), 4); // {3, 7, 9, 12}
    }
}
