//! The simulated Chord ring: membership, pointer resolution, greedy
//! finger routing, join/leave protocols, and stabilization.
//!
//! Built on the shared [`dht_core::sim`] substrate: the
//! [`Membership`] arena owns node states, identifier allocation and
//! query-load counters, and the [`SimOverlay`] impl at the bottom of
//! this file expresses Chord's routing as a per-hop decision the
//! substrate's walk driver executes.

use dht_core::hash::{reduce, splitmix64};
use dht_core::lookup::{HopPhase, LookupTrace};
use dht_core::overlay::NodeToken;
use dht_core::ring::{clockwise_dist, in_interval_oc, in_interval_oo};
use dht_core::sim::{walk_from, Membership, SimOverlay, StepDecision};
use rand::RngCore;

use crate::node::ChordNode;

/// Configuration of a Chord deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChordConfig {
    /// Identifier bits: the ring has `2^bits` positions and `bits` fingers
    /// per node.
    pub bits: u32,
    /// Successor-list length (the paper's fault-tolerance backup; 3 keeps
    /// parity with Koorde's three successors).
    pub successor_list: usize,
}

impl ChordConfig {
    /// Standard configuration: `bits`-bit ring, successor list of 3.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=63).contains(&bits), "Chord bits must be in [1, 63]");
        Self {
            bits,
            successor_list: 3,
        }
    }

    /// The ring size `2^bits`.
    #[must_use]
    pub fn space(&self) -> u64 {
        1u64 << self.bits
    }
}

/// A simulated Chord network.
#[derive(Debug, Clone)]
pub struct ChordNetwork {
    config: ChordConfig,
    /// Live nodes keyed by ring identifier.
    members: Membership<ChordNode>,
}

impl ChordNetwork {
    /// Creates an empty ring.
    #[must_use]
    pub fn new(config: ChordConfig, seed: u64) -> Self {
        Self {
            config,
            members: Membership::new(seed),
        }
    }

    /// Builds a stabilized ring of `count` uniformly placed nodes.
    #[must_use]
    pub fn with_nodes(config: ChordConfig, count: usize, seed: u64) -> Self {
        let mut net = Self::new(config, seed);
        assert!(
            count as u64 <= config.space(),
            "{count} nodes exceed the 2^{} ring",
            config.bits
        );
        while net.members.len() < count {
            let id = net.members.next_in(config.space());
            if !net.members.contains(id) {
                net.insert_raw(id);
            }
        }
        net.stabilize_all();
        net
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> ChordConfig {
        self.config
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// `true` iff `id` is live.
    #[must_use]
    pub fn is_live(&self, id: u64) -> bool {
        self.members.contains(id)
    }

    /// Live node identifiers in ring order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.members.token_iter()
    }

    /// Shared read access to a node's state.
    #[must_use]
    pub fn node(&self, id: u64) -> Option<&ChordNode> {
        self.members.get(id)
    }

    /// Exclusive access to a node's state — for the corruption injector
    /// and the audit tests, which damage state the protocol itself never
    /// produces.
    pub(crate) fn node_mut(&mut self, id: u64) -> Option<&mut ChordNode> {
        self.members.get_mut(id)
    }

    /// Maps a raw key onto the ring.
    #[must_use]
    pub fn key_of(&self, raw_key: u64) -> u64 {
        reduce(splitmix64(raw_key), self.config.space())
    }

    /// Ground truth: the live successor of ring point `x` (the node
    /// storing key `x`).
    #[must_use]
    pub fn successor_of_point(&self, x: u64) -> Option<u64> {
        self.members.successor_of(x)
    }

    /// Ground truth: the live node strictly preceding ring point `x`.
    #[must_use]
    pub fn predecessor_of_point(&self, x: u64) -> Option<u64> {
        self.members.predecessor_of(x)
    }

    fn insert_raw(&mut self, id: u64) {
        let node = ChordNode::new(id, self.config.bits, self.config.successor_list);
        self.members.insert(id, node);
    }

    /// Recomputes every pointer of one node from the live membership (what
    /// its stabilizer converges to).
    pub fn refresh_node(&mut self, id: u64) {
        let bits = self.config.bits;
        let space = self.config.space();
        let r = self.config.successor_list;
        let pred = self
            .predecessor_of_point(id)
            .expect("refresh on empty ring");
        let mut succs = Vec::with_capacity(r);
        let mut cursor = id;
        for _ in 0..r {
            let s = self
                .successor_of_point((cursor + 1) % space)
                .expect("non-empty ring");
            succs.push(s);
            cursor = s;
        }
        let mut fingers = Vec::with_capacity(bits as usize);
        for i in 0..bits {
            let target = (id + (1u64 << i)) % space;
            fingers.push(self.successor_of_point(target).expect("non-empty ring"));
        }
        let node = self.members.get_mut(id).expect("refresh of dead node");
        node.predecessor = pred;
        node.successors = succs.into();
        node.fingers = fingers;
    }

    /// Refreshes only the ring pointers (predecessor + successor list) of
    /// one node — what join/leave notifications repair.
    fn refresh_ring_pointers(&mut self, id: u64) {
        let space = self.config.space();
        let r = self.config.successor_list;
        let pred = self
            .predecessor_of_point(id)
            .expect("refresh on empty ring");
        let mut succs = Vec::with_capacity(r);
        let mut cursor = id;
        for _ in 0..r {
            let s = self
                .successor_of_point((cursor + 1) % space)
                .expect("non-empty ring");
            succs.push(s);
            cursor = s;
        }
        let node = self.members.get_mut(id).expect("refresh of dead node");
        node.predecessor = pred;
        node.successors = succs.into();
    }

    /// Full stabilization: every node refreshes its fingers and ring
    /// pointers.
    pub fn stabilize_all(&mut self) {
        let ids: Vec<u64> = self.ids().collect();
        for id in ids {
            self.refresh_node(id);
        }
    }

    /// The nodes whose successor lists or predecessor pointer reference
    /// ring position `id`: its `successor_list` nearest live predecessors
    /// and its live successor.
    fn ring_neighbors_of(&self, id: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if self.members.is_empty() {
            return out;
        }
        // `id + 1`: at join time the node itself is already in the map, and
        // its *successor* is the neighbour that must learn about it.
        if let Some(s) = self.successor_of_point((id + 1) % self.config.space()) {
            out.push(s);
        }
        let mut cursor = id;
        for _ in 0..self.config.successor_list {
            match self.predecessor_of_point(cursor) {
                Some(p) if !out.contains(&p) => {
                    out.push(p);
                    cursor = p;
                }
                Some(p) => {
                    cursor = p;
                }
                None => break,
            }
        }
        out
    }

    /// Protocol join: the new node builds its own full state and notifies
    /// its ring neighbourhood (predecessor and successors), which mend
    /// their ring pointers. Finger tables elsewhere stay stale until
    /// stabilization.
    pub fn join_id(&mut self, id: u64) -> bool {
        if self.is_live(id) {
            return false;
        }
        self.insert_raw(id);
        self.refresh_node(id);
        for nb in self.ring_neighbors_of(id) {
            if nb != id {
                self.refresh_ring_pointers(nb);
            }
        }
        true
    }

    /// Join with a freshly hashed identifier.
    pub fn join_random(&mut self) -> Option<u64> {
        if self.members.len() as u64 >= self.config.space() {
            return None;
        }
        loop {
            let id = self.members.next_in(self.config.space());
            if self.join_id(id) {
                return Some(id);
            }
        }
    }

    /// Graceful departure: the leaver notifies its predecessor and
    /// successors, which mend their ring pointers. **Fingers elsewhere are
    /// not notified** — they stay stale until stabilization (the timeouts
    /// of §4.3).
    pub fn leave(&mut self, id: u64) -> bool {
        if self.members.remove(id).is_none() {
            return false;
        }
        if self.members.is_empty() {
            return true;
        }
        for nb in self.ring_neighbors_of(id) {
            self.refresh_ring_pointers(nb);
        }
        true
    }

    /// Hop budget for lookups.
    /// Ungraceful failure: the node vanishes without the leave
    /// notifications, so even ring successors and predecessors stay stale
    /// until stabilization.
    pub fn fail_node(&mut self, id: u64) -> bool {
        self.members.remove(id).is_some()
    }

    /// One lookup from `src` for ring key `key`, using only per-node state:
    /// greedy closest-preceding-finger routing with successor-list
    /// fallback. Dead contacts cost a timeout each.
    pub fn route_to_point(&mut self, src: u64, key: u64) -> LookupTrace {
        walk_from(self, src, ChordWalk { key }, true)
    }

    /// Lookup by raw (pre-hash) key.
    pub fn route(&mut self, src: u64, raw_key: u64) -> LookupTrace {
        let key = self.key_of(raw_key);
        self.route_to_point(src, key)
    }
}

/// Per-lookup walk state: the ring point being routed towards.
#[derive(Debug, Clone, Copy)]
pub struct ChordWalk {
    /// The mapped key.
    pub key: u64,
}

impl SimOverlay for ChordNetwork {
    type State = ChordNode;
    type Walk = ChordWalk;

    fn membership(&self) -> &Membership<ChordNode> {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership<ChordNode> {
        &mut self.members
    }

    fn label(&self) -> String {
        "Chord".to_string()
    }

    fn degree_limit(&self) -> Option<usize> {
        None // O(log n) fingers: not constant-degree
    }

    /// One message per distinct finger/successor/predecessor entry.
    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        self.members
            .get(node)
            .map_or(1, |s| (s.degree() as u64).max(1))
    }

    fn map_key(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key)
    }

    fn owner_token(&self, raw_key: u64) -> Option<NodeToken> {
        self.successor_of_point(self.key_of(raw_key))
    }

    fn hop_budget(&self) -> usize {
        8 * self.config.bits as usize + 64
    }

    fn begin_walk(&self, _src: NodeToken, raw_key: u64) -> ChordWalk {
        ChordWalk {
            key: self.key_of(raw_key),
        }
    }

    fn walk_owner(&self, walk: &ChordWalk) -> Option<NodeToken> {
        self.successor_of_point(walk.key)
    }

    fn next_hop(&self, cur: NodeToken, walk: &mut ChordWalk) -> StepDecision {
        let space = self.config.space();
        let key = walk.key;
        let node = self.members.get(cur).expect("current node is live");
        // Terminal test: cur owns (pred, cur].
        if in_interval_oc(key, node.predecessor, cur, space) {
            return StepDecision::Terminate;
        }
        // Candidate order: if the key is between cur and its successor,
        // go to the successor (it is the owner); otherwise the closest
        // preceding finger, falling back through lower fingers and the
        // successor list on timeouts.
        let mut candidates: Vec<(HopPhase, u64)> = Vec::new();
        if in_interval_oc(key, cur, node.successor(), space) {
            for &s in &node.successors {
                candidates.push((HopPhase::Successor, s));
            }
        } else {
            let mut fingers: Vec<u64> = node
                .fingers
                .iter()
                .copied()
                .filter(|&f| f != cur && in_interval_oo(f, cur, key, space))
                .collect();
            // Closest preceding first: maximal clockwise distance from
            // cur (i.e. nearest to the key without passing it).
            fingers.sort_unstable_by_key(|&f| std::cmp::Reverse(clockwise_dist(cur, f, space)));
            fingers.dedup();
            for f in fingers {
                candidates.push((HopPhase::Finger, f));
            }
            for &s in &node.successors {
                candidates.push((HopPhase::Successor, s));
            }
        }
        StepDecision::Forward(candidates)
    }

    fn node_join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random()
    }

    fn node_leave(&mut self, node: NodeToken) -> bool {
        self.leave(node)
    }

    fn node_fail(&mut self, node: NodeToken) -> bool {
        self.fail_node(node)
    }

    fn stabilize_network(&mut self) {
        self.stabilize_all();
    }

    fn stabilize_one(&mut self, node: NodeToken) {
        if self.is_live(node) {
            self.refresh_node(node);
        }
    }

    fn state_heap_bytes(&self, state: &ChordNode) -> usize {
        // Successor list is inline; only the O(log n) finger table
        // lives on the heap.
        state.fingers.capacity() * std::mem::size_of::<u64>()
    }

    fn audit_network(&self, scope: dht_core::audit::AuditScope) -> dht_core::audit::AuditReport {
        dht_core::audit::StateAudit::audit(self, scope)
    }

    fn corrupt_network(
        &mut self,
        plan: &dht_core::corrupt::CorruptionPlan,
    ) -> dht_core::corrupt::CorruptionReport {
        self.corrupt(plan)
    }

    fn repair_step(&mut self, node: NodeToken) -> u64 {
        self.repair_one(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::lookup::LookupOutcome;
    use dht_core::rng::stream;
    use rand::Rng;

    #[test]
    fn with_nodes_builds_and_stabilizes() {
        let net = ChordNetwork::with_nodes(ChordConfig::new(11), 500, 1);
        assert_eq!(net.node_count(), 500);
        for id in net.ids() {
            let n = net.node(id).unwrap();
            assert_eq!(n.fingers.len(), 11);
            assert!(net.is_live(n.successor()));
            assert!(net.is_live(n.predecessor));
        }
    }

    #[test]
    fn successor_predecessor_ground_truth() {
        let mut net = ChordNetwork::new(ChordConfig::new(6), 2);
        for id in [5u64, 20, 40, 60] {
            net.join_id(id);
        }
        assert_eq!(net.successor_of_point(5), Some(5));
        assert_eq!(net.successor_of_point(6), Some(20));
        assert_eq!(net.successor_of_point(61), Some(5), "wraps");
        assert_eq!(net.predecessor_of_point(5), Some(60), "wraps back");
        assert_eq!(net.predecessor_of_point(21), Some(20));
    }

    #[test]
    fn all_lookups_resolve_in_stable_ring() {
        let mut net = ChordNetwork::with_nodes(ChordConfig::new(11), 300, 3);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(4, "chord");
        for i in 0..2000 {
            let src = ids[i % ids.len()];
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let t = net.route(src, raw);
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            assert_eq!(t.timeouts, 0);
            assert_eq!(Some(t.terminal), net.successor_of_point(key));
        }
    }

    #[test]
    fn path_length_is_logarithmic() {
        // Mean path must be around (log2 n)/2 and well below log2 n + slack.
        let mut net = ChordNetwork::with_nodes(ChordConfig::new(16), 1024, 5);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(6, "chordlen");
        let mut total = 0usize;
        let trials = 2000;
        for i in 0..trials {
            let src = ids[i % ids.len()];
            total += net.route(src, rng.gen()).path_len();
        }
        let mean = total as f64 / trials as f64;
        assert!(mean > 2.0 && mean < 11.0, "mean path {mean} not O(log n)");
    }

    #[test]
    fn graceful_leave_keeps_lookups_correct_with_timeouts() {
        let mut net = ChordNetwork::with_nodes(ChordConfig::new(11), 1024, 7);
        let mut rng = stream(8, "chordfail");
        let ids: Vec<u64> = net.ids().collect();
        for &id in &ids {
            if rng.gen_bool(0.3) {
                net.leave(id);
            }
        }
        let live: Vec<u64> = net.ids().collect();
        let mut timeouts = 0u32;
        for i in 0..1000 {
            let t = net.route(live[i % live.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            timeouts += t.timeouts;
        }
        assert!(timeouts > 0, "stale fingers must time out");
        net.stabilize_all();
        for i in 0..200 {
            let t = net.route(live[i % live.len()], rng.gen());
            assert_eq!(t.timeouts, 0, "stabilization removes timeouts");
        }
    }

    #[test]
    fn join_makes_new_node_reachable() {
        let mut net = ChordNetwork::with_nodes(ChordConfig::new(10), 100, 9);
        let newcomer = net.join_random().unwrap();
        // A key just below the newcomer maps to it.
        let probe = newcomer; // key == node id -> successor is the node
        let src = net.ids().next().unwrap();
        let t = net.route_to_point(src, probe);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(t.terminal, newcomer);
    }

    #[test]
    fn leave_mends_ring_pointers() {
        let mut net = ChordNetwork::with_nodes(ChordConfig::new(8), 50, 10);
        let ids: Vec<u64> = net.ids().collect();
        let victim = ids[10];
        let before_pred = net.predecessor_of_point(victim).unwrap();
        let after_succ = net.successor_of_point((victim + 1) % 256).unwrap();
        net.leave(victim);
        let p = net.node(before_pred).unwrap();
        assert_eq!(p.successor(), after_succ, "ring mended around leaver");
        let s = net.node(after_succ).unwrap();
        assert_eq!(s.predecessor, before_pred);
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let mut net = ChordNetwork::new(ChordConfig::new(8), 11);
        net.join_id(42);
        let t = net.route_to_point(42, 7);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(t.path_len(), 0);
    }

    #[test]
    fn degree_grows_with_network_size() {
        // Chord is the O(log n) baseline: mean degree in a 512-node ring
        // must exceed any constant-degree DHT's 7 entries.
        let net = ChordNetwork::with_nodes(ChordConfig::new(12), 512, 12);
        let mean: f64 = net
            .ids()
            .map(|id| net.node(id).unwrap().degree() as f64)
            .sum::<f64>()
            / net.node_count() as f64;
        assert!(mean > 7.0, "Chord mean degree {mean} should exceed 7");
    }

    #[test]
    fn trait_roundtrip() {
        use dht_core::overlay::Overlay;
        let mut net: Box<dyn Overlay> =
            Box::new(ChordNetwork::with_nodes(ChordConfig::new(11), 200, 1));
        assert_eq!(net.name(), "Chord");
        assert_eq!(net.degree_bound(), None);
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[0], 777);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(777));
    }

    #[test]
    fn key_counts_sum_matches() {
        let net = ChordNetwork::with_nodes(ChordConfig::new(11), 100, 2);
        let keys = dht_core::workload::key_population(2_000, &mut stream(3, "ck"));
        let counts = dht_core::overlay::key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 2_000);
    }

    #[test]
    fn churn_through_trait() {
        use dht_core::overlay::Overlay;
        let mut net = ChordNetwork::with_nodes(ChordConfig::new(11), 64, 4);
        let mut rng = stream(5, "cj");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert_eq!(net.len(), 65);
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 64);
    }
}
