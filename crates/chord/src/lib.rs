//! # Chord baseline
//!
//! The `O(log n)`-degree reference DHT of the Cycloid evaluation (Stoica et
//! al., SIGCOMM 2001): a one-dimensional circular key space where the node
//! responsible for a key is the key's **successor**, each node keeps a
//! successor list plus a finger table of `O(log n)` exponentially spaced
//! pointers, and lookups walk greedily through closest-preceding fingers in
//! `O(log n)` hops.
//!
//! Protocol fidelity matters to the paper's §4.3/§4.4 experiments:
//! a *graceful* departure notifies only the departing node's predecessor
//! and successors (mending the ring and the nearby successor lists), while
//! **finger tables elsewhere go stale** until stabilization — each stale
//! finger contacted during a lookup is a timeout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ```
//! use chord::{ChordConfig, ChordNetwork};
//!
//! let mut ring = ChordNetwork::with_nodes(ChordConfig::new(11), 500, 42);
//! let src = ring.ids().next().unwrap();
//! let trace = ring.route(src, 0xfeed);
//! assert!(trace.outcome.is_success());
//! assert!(trace.path_len() <= 22); // O(log n)
//! ```

mod audit;
pub mod network;
pub mod node;
mod repair;

pub use network::{ChordConfig, ChordNetwork};
pub use node::ChordNode;
