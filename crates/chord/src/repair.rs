//! Corruption and self-stabilizing repair of Chord routing state.
//!
//! Maps the shared strategy catalogue ([`CorruptionStrategy`]) onto
//! Chord's state — predecessor, successor list, finger table — and
//! implements one node's repair step as an audited recompute from live
//! membership ([`ChordNetwork::refresh_node`] plus a before/after entry
//! diff). Repair is an exact no-op on healthy nodes and consumes no RNG
//! draws.

use dht_core::corrupt::{CorruptionPlan, CorruptionReport, CorruptionStrategy};

use crate::network::ChordNetwork;
use crate::node::ChordNode;

const SALT_PRED: u64 = 1;
const SALT_SUCC: u64 = 0x100;
const SALT_FINGER: u64 = 0x1000;
const SALT_ATTACKER: u64 = 0xa77a;

/// Entries on which two states differ (predecessor + per-position
/// successor-list and finger-table slots).
fn diff_count(a: &ChordNode, b: &ChordNode) -> u64 {
    let mut n = u64::from(a.predecessor != b.predecessor);
    n += a
        .successors
        .iter()
        .zip(&b.successors)
        .filter(|(x, y)| x != y)
        .count() as u64;
    n += a
        .fingers
        .iter()
        .zip(&b.fingers)
        .filter(|(x, y)| x != y)
        .count() as u64;
    n
}

impl ChordNetwork {
    /// Applies a seeded corruption plan (see [`dht_core::corrupt`]) to
    /// the ring's routing state. Membership and query loads stay
    /// untouched.
    pub fn corrupt(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        let live: Vec<u64> = self.ids().collect();
        let victims = plan.victims(&live);
        let attacker = plan.pick(SALT_ATTACKER, 0, &live);
        let space = self.config().space();
        let mut report = CorruptionReport::default();
        for &id in &victims {
            let before = self.node(id).expect("victim is live").clone();
            let mut next = before.clone();
            match plan.strategy {
                CorruptionStrategy::RandomizeLinks => {
                    if let Some(p) = plan.pick(id, SALT_PRED, &live) {
                        next.predecessor = p;
                    }
                    for (i, s) in next.successors.as_mut_slice().iter_mut().enumerate() {
                        if let Some(v) = plan.pick(id, SALT_SUCC + i as u64, &live) {
                            *s = v;
                        }
                    }
                    for (i, f) in next.fingers.iter_mut().enumerate() {
                        if let Some(v) = plan.pick(id, SALT_FINGER + i as u64, &live) {
                            *f = v;
                        }
                    }
                }
                CorruptionStrategy::GhostLinks => {
                    let is_live = |v: u64| live.binary_search(&v).is_ok();
                    if let Some(g) = plan.ghost(id, SALT_PRED, space, is_live) {
                        next.predecessor = g;
                    }
                    for (i, s) in next.successors.as_mut_slice().iter_mut().enumerate() {
                        if let Some(g) = plan.ghost(id, SALT_SUCC + i as u64, space, is_live) {
                            *s = g;
                        }
                    }
                    for (i, f) in next.fingers.iter_mut().enumerate() {
                        if let Some(g) = plan.ghost(id, SALT_FINGER + i as u64, space, is_live) {
                            *f = g;
                        }
                    }
                }
                CorruptionStrategy::CrossWireLeafSets => {
                    // Chord's "leaf set" is the ring neighborhood: rotate
                    // the successor list one position and cross the
                    // predecessor with the farthest successor.
                    let slots = next.successors.as_mut_slice();
                    slots.rotate_left(1);
                    if let Some(last) = slots.last_mut() {
                        std::mem::swap(&mut next.predecessor, last);
                    }
                }
                CorruptionStrategy::ZeroLinks => {
                    // The "knows nobody" reset state of a fresh node.
                    next.predecessor = next.id;
                    for s in next.successors.as_mut_slice() {
                        *s = next.id;
                    }
                    for f in next.fingers.iter_mut() {
                        *f = next.id;
                    }
                }
                CorruptionStrategy::EclipseRegion => {
                    if let Some(attacker) = attacker {
                        next.predecessor = attacker;
                        for s in next.successors.as_mut_slice() {
                            *s = attacker;
                        }
                        for f in next.fingers.iter_mut() {
                            *f = attacker;
                        }
                    }
                }
            }
            let mutated = diff_count(&before, &next);
            *self.node_mut(id).expect("victim is live") = next;
            report.note(mutated);
        }
        report
    }

    /// One node's repair step: recompute predecessor, successor list and
    /// fingers from live membership; returns entries rewritten (0 on a
    /// healthy node). Ignores dead tokens.
    pub fn repair_one(&mut self, id: u64) -> u64 {
        if !self.is_live(id) {
            return 0;
        }
        let before = self.node(id).expect("live node has state").clone();
        self.refresh_node(id);
        diff_count(&before, self.node(id).expect("still live"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ChordConfig;
    use dht_core::audit::{AuditScope, StateAudit};

    fn net(n: usize) -> ChordNetwork {
        ChordNetwork::with_nodes(ChordConfig::new(11), n, 42)
    }

    fn repair_sweep(net: &mut ChordNetwork) -> u64 {
        let ids: Vec<u64> = net.ids().collect();
        ids.into_iter().map(|id| net.repair_one(id)).sum()
    }

    #[test]
    fn repair_is_a_noop_on_a_healthy_ring() {
        let mut n = net(80);
        assert!(n.audit(AuditScope::Full).is_clean());
        assert_eq!(repair_sweep(&mut n), 0);
    }

    #[test]
    fn every_strategy_is_detected_and_repaired() {
        for strategy in CorruptionStrategy::ALL {
            let mut n = net(80);
            let plan = CorruptionPlan::new(strategy, 0.5, 9);
            let report = n.corrupt(&plan);
            assert_eq!(report.targeted_nodes, 40, "{strategy:?}");
            assert!(report.corrupted_nodes > 0, "{strategy:?} did no damage");
            assert!(
                !n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} evaded the audit"
            );
            repair_sweep(&mut n);
            assert!(
                n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} not repaired: {}",
                n.audit(AuditScope::Full)
            );
            assert_eq!(
                repair_sweep(&mut n),
                0,
                "{strategy:?} repair not idempotent"
            );
        }
    }
}
