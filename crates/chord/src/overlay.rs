//! [`dht_core::Overlay`] adapter for the Chord baseline.

use dht_core::lookup::LookupTrace;
use dht_core::overlay::{NodeToken, Overlay};
use rand::RngCore;

use crate::network::ChordNetwork;

impl Overlay for ChordNetwork {
    fn name(&self) -> String {
        "Chord".to_string()
    }

    fn len(&self) -> usize {
        self.node_count()
    }

    fn degree_bound(&self) -> Option<usize> {
        None // O(log n) fingers: not constant-degree
    }

    fn node_tokens(&self) -> Vec<NodeToken> {
        self.ids().collect()
    }

    fn random_node(&self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        if self.node_count() == 0 {
            return None;
        }
        let tokens = self.node_tokens();
        Some(tokens[(rng.next_u64() % tokens.len() as u64) as usize])
    }

    fn key_id(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key)
    }

    fn owner_of(&self, raw_key: u64) -> Option<NodeToken> {
        self.successor_of_point(self.key_of(raw_key))
    }

    fn lookup(&mut self, src: NodeToken, raw_key: u64) -> LookupTrace {
        self.route(src, raw_key)
    }

    fn join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random()
    }

    fn leave(&mut self, node: NodeToken) -> bool {
        ChordNetwork::leave(self, node)
    }

    fn fail(&mut self, node: NodeToken) -> bool {
        self.fail_node(node)
    }

    fn stabilize(&mut self) {
        self.stabilize_all();
    }

    fn stabilize_node(&mut self, node: NodeToken) {
        if self.is_live(node) {
            self.refresh_node(node);
        }
    }

    fn query_loads(&self) -> Vec<u64> {
        ChordNetwork::query_loads(self)
    }

    fn reset_query_loads(&mut self) {
        ChordNetwork::reset_query_loads(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ChordConfig;
    use dht_core::overlay::key_counts;
    use dht_core::rng::stream;
    use dht_core::workload;

    #[test]
    fn trait_roundtrip() {
        let mut net: Box<dyn Overlay> =
            Box::new(ChordNetwork::with_nodes(ChordConfig::new(11), 200, 1));
        assert_eq!(net.name(), "Chord");
        assert_eq!(net.degree_bound(), None);
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[0], 777);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(777));
    }

    #[test]
    fn key_counts_sum_matches() {
        let net = ChordNetwork::with_nodes(ChordConfig::new(11), 100, 2);
        let keys = workload::key_population(2_000, &mut stream(3, "ck"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 2_000);
    }

    #[test]
    fn churn_through_trait() {
        let mut net = ChordNetwork::with_nodes(ChordConfig::new(11), 64, 4);
        let mut rng = stream(5, "cj");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert_eq!(net.len(), 65);
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 64);
    }
}
