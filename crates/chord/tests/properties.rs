//! Property-based tests of the Chord ring invariants.

use chord::{ChordConfig, ChordNetwork};
use dht_core::lookup::LookupOutcome;
use dht_core::ring::in_interval_oc;
use dht_core::rng::stream;
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ring_pointers_form_a_single_cycle(seed in any::<u64>(), count in 2usize..150) {
        let net = ChordNetwork::with_nodes(ChordConfig::new(10), count, seed);
        // Following successors from any node visits every node exactly
        // once before returning.
        let start = net.ids().next().unwrap();
        let mut cur = start;
        let mut visited = std::collections::HashSet::new();
        loop {
            prop_assert!(visited.insert(cur), "successor cycle revisited {cur}");
            cur = net.node(cur).unwrap().successor();
            if cur == start {
                break;
            }
        }
        prop_assert_eq!(visited.len(), count);
    }

    #[test]
    fn fingers_are_successors_of_their_targets(seed in any::<u64>(), count in 2usize..120) {
        let net = ChordNetwork::with_nodes(ChordConfig::new(10), count, seed);
        let space = 1u64 << 10;
        for id in net.ids() {
            let node = net.node(id).unwrap();
            for (i, &f) in node.fingers.iter().enumerate() {
                let target = (id + (1u64 << i)) % space;
                prop_assert_eq!(Some(f), net.successor_of_point(target));
            }
        }
    }

    #[test]
    fn owner_partition_is_the_arc_to_the_predecessor(seed in any::<u64>(), count in 2usize..100, key in any::<u64>()) {
        let net = ChordNetwork::with_nodes(ChordConfig::new(12), count, seed);
        let space = 1u64 << 12;
        let k = net.key_of(key);
        let owner = net.successor_of_point(k).unwrap();
        let pred = net.predecessor_of_point(owner).unwrap();
        prop_assert!(in_interval_oc(k, pred, owner, space));
    }

    #[test]
    fn lookups_reach_owner_after_arbitrary_graceful_churn(seed in any::<u64>(), leaves in 0usize..40) {
        let mut net = ChordNetwork::with_nodes(ChordConfig::new(11), 120, seed);
        let mut rng = stream(seed, "chord-prop");
        for _ in 0..leaves {
            if net.node_count() > 4 {
                let ids: Vec<u64> = net.ids().collect();
                let victim = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
                net.leave(victim);
            }
        }
        let ids: Vec<u64> = net.ids().collect();
        for i in 0..20 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }
}
