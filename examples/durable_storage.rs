//! Durable storage over a constant-degree overlay: publish a corpus into
//! a replicated [`kvstore::KvStore`] running on Cycloid, then put the
//! deployment through churn and a crash wave and watch replication keep
//! the data readable.
//!
//! ```text
//! cargo run --release --example durable_storage [replication]
//! ```

use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use rand::Rng;

fn main() {
    let replication: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 600, 7);
    let mut store = KvStore::new(net, replication);
    println!(
        "Cycloid(d=8) with {} nodes; storing with replication factor {replication}",
        store.overlay().node_count()
    );

    // Publish a corpus.
    let objects = 1_000;
    for i in 0..objects {
        store.put(
            &format!("doc/{i:04}"),
            format!("contents of document {i}").into_bytes(),
        );
    }
    println!(
        "published {objects} objects as {} replicas (misplaced: {})",
        store.replica_count(),
        store.misplaced()
    );

    // Sustained graceful churn: the store migrates replicas with
    // ownership.
    let mut rng = stream(13, "storage-churn");
    for _ in 0..60 {
        let _ = store.join_node(&mut rng);
        let toks = store.overlay().node_tokens();
        let victim = toks[rng.gen_range(0..toks.len())];
        store.leave_node(victim);
    }
    let mut readable = 0;
    for i in 0..objects {
        if store.get(&format!("doc/{i:04}")).is_some() {
            readable += 1;
        }
    }
    println!(
        "after 60 joins + 60 graceful leaves: {readable}/{objects} readable, misplaced {}",
        store.misplaced()
    );

    // Crash wave: 25% of the nodes vanish without a word.
    let mut crashed = 0;
    for tok in store.overlay().node_tokens() {
        if rng.gen_bool(0.25) {
            store.fail_node(tok);
            crashed += 1;
        }
    }
    store.stabilize_overlay();
    let lost = store.repair();
    let mut readable = 0;
    let mut served_by_backup = 0;
    for i in 0..objects {
        if let Some(got) = store.get(&format!("doc/{i:04}")) {
            readable += 1;
            if got.replica > 0 {
                served_by_backup += 1;
            }
        }
    }
    println!(
        "after {crashed} crashes: {lost} objects lost outright, {readable}/{objects} readable \
         ({served_by_backup} reads served by a backup replica)"
    );
    println!(
        "expected loss at R={replication}: ~{:.1} objects (n * p^R)",
        objects as f64 * 0.25f64.powi(replication as i32)
    );
}
