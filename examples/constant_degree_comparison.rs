//! Side-by-side comparison of the three constant-degree DHTs (plus
//! Chord) on the same workload — a miniature of the paper's whole
//! evaluation in one run.
//!
//! ```text
//! cargo run --release --example constant_degree_comparison [n]
//! ```

use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use rand::Rng;

struct Line {
    label: String,
    degree: String,
    mean_path: f64,
    p99_path: f64,
    key_p99: f64,
    load_spread: f64,
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(896);
    println!("comparing DHTs at n = {n} nodes\n");

    let mut lines = Vec::new();
    for kind in PAPER_KINDS {
        let mut net = build_overlay(kind, n, 77);

        // Lookup efficiency: 20 lookups per node.
        let tokens = net.node_tokens();
        let mut rng = stream(3, kind.label());
        let mut paths = Vec::new();
        for &src in &tokens {
            for _ in 0..20 {
                let t = net.lookup(src, rng.gen());
                assert!(t.outcome.is_success(), "{} lost a lookup", kind.label());
                paths.push(t.path_len());
            }
        }
        let path = Summary::of_lens(&paths);

        // Key balance: 100k keys.
        let keys: Vec<u64> = (0..100_000u64)
            .map(|i| hash_str(&format!("k{i}")))
            .collect();
        let key_summary = Summary::of_counts(&key_counts(net.as_ref(), &keys));

        // Query-load spread from the lookup workload above.
        let load = Summary::of_counts(&net.query_loads());
        let spread = if load.mean > 0.0 {
            (load.p99 - load.p01) / load.mean
        } else {
            0.0
        };

        lines.push(Line {
            label: kind.label().to_string(),
            degree: net
                .degree_bound()
                .map_or("O(log n)".into(), |d| d.to_string()),
            mean_path: path.mean,
            p99_path: path.p99,
            key_p99: key_summary.p99,
            load_spread: spread,
        });
    }

    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>12}",
        "system", "degree", "mean path", "p99 path", "key p99", "load spread"
    );
    for l in &lines {
        println!(
            "{:<14} {:>9} {:>10.2} {:>9.0} {:>9.0} {:>12.2}",
            l.label, l.degree, l.mean_path, l.p99_path, l.key_p99, l.load_spread
        );
    }

    let cycloid = &lines[0];
    let viceroy = lines.iter().find(|l| l.label == "Viceroy").unwrap();
    println!(
        "\nheadline: Cycloid routes {:.1}x shorter than Viceroy at the same 7-link degree",
        viceroy.mean_path / cycloid.mean_path
    );
}
