//! Quickstart: build a Cycloid network, store a few named objects, look
//! them up from random peers, and inspect a node's seven-entry routing
//! state.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use rand::RngCore;

fn main() {
    // An 8-dimensional Cycloid: identifier space d * 2^d = 2048, here with
    // 500 participating nodes, each keeping at most 7 links.
    let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 500, 42);
    println!(
        "built a Cycloid(d=8) network: {} nodes, degree bound 7, id space {}",
        net.node_count(),
        net.dim().id_space()
    );

    // Map application objects onto the identifier space with consistent
    // hashing, exactly as §3.1 prescribes (cyclic = h mod d, cubical =
    // h div d).
    let objects = ["alpha.iso", "beta.mp4", "gamma.tar.gz", "delta.pdf"];
    for name in objects {
        let raw = hash_str(name);
        let key = net.key_of(raw);
        let owner = net.owner_of_key(key).expect("network is non-empty");
        println!("object {name:>12} -> key {key} stored at node {owner}");
    }

    // Look each object up from a random peer and show the route taken.
    let mut rng = stream(7, "quickstart");
    for name in objects {
        let src = {
            let ids: Vec<_> = net.ids().collect();
            ids[(rng.next_u64() % ids.len() as u64) as usize]
        };
        let trace = net.route(src, hash_str(name));
        assert_eq!(trace.outcome, LookupOutcome::Found);
        let phases: Vec<&str> = trace.hops.iter().map(|h| h.label()).collect();
        println!(
            "lookup {name:>12} from {src}: {} hops ({}), {} timeouts",
            trace.path_len(),
            phases.join(" > "),
            trace.timeouts
        );
    }

    // Inspect one node's complete routing state — the constant-degree
    // property in the flesh.
    let some = net.ids().nth(42).unwrap();
    let state = net.node(some).unwrap();
    println!(
        "\nrouting state of node {some} (degree {}):",
        state.degree()
    );
    println!(
        "  cubical neighbor : {:?}",
        state.cubical_neighbor.map(|n| n.to_string())
    );
    println!(
        "  cyclic larger    : {:?}",
        state.cyclic_larger.map(|n| n.to_string())
    );
    println!(
        "  cyclic smaller   : {:?}",
        state.cyclic_smaller.map(|n| n.to_string())
    );
    println!(
        "  inside leaf set  : {} | {}",
        state.inside_left[0], state.inside_right[0]
    );
    println!(
        "  outside leaf set : {} | {}",
        state.outside_left[0], state.outside_right[0]
    );

    // Churn: a node joins, a node leaves, lookups keep resolving.
    let newcomer = net.join_random(&mut rng).expect("space not full");
    println!(
        "\nnode {newcomer} joined (network now {})",
        net.node_count()
    );
    let leaver = net.ids().nth(100).unwrap();
    net.leave(leaver);
    println!(
        "node {leaver} left gracefully (network now {})",
        net.node_count()
    );
    let src = net.ids().next().unwrap();
    let trace = net.route(src, hash_str("alpha.iso"));
    println!(
        "post-churn lookup for alpha.iso: {:?} in {} hops",
        trace.outcome,
        trace.path_len()
    );
}
