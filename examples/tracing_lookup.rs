//! Structured event tracing: stream a Cycloid lookup's life as JSONL.
//!
//! Builds a 64-node Cycloid(7) network, installs a [`JsonlSink`] on it,
//! and runs a handful of lookups. Every routing step is emitted as one
//! JSON object on stdout — `lookup_start`, a `hop` per forwarding step
//! tagged with its routing phase (ascending → descending → traverse, the
//! paper's §3.3 three-phase scheme), and a `lookup_end` with the outcome.
//! Commentary goes to stderr, so the JSONL stream stays pipeable:
//!
//! ```text
//! cargo run --release --example tracing_lookup 2>/dev/null | head
//! ```

use std::sync::{Arc, Mutex};

use cycloid_repro::prelude::{build_overlay, OverlayKind};
use dht_core::obs::{JsonlSink, SinkHandle};
use dht_core::rng::stream;
use rand::Rng;

fn main() {
    let mut net = build_overlay(OverlayKind::Cycloid7, 64, 42);
    eprintln!("built {} with {} nodes", net.name(), net.len());

    // Shared handle so we can check for swallowed write errors at the end.
    let sink = Arc::new(Mutex::new(JsonlSink::new(std::io::stdout())));
    net.set_trace_sink(SinkHandle::new(Arc::clone(&sink)));

    let tokens = net.node_tokens();
    let mut keys = stream(42, "tracing-example");
    for i in 0..8 {
        let src = tokens[i * 7 % tokens.len()];
        let key: u64 = keys.gen();
        let trace = net.lookup(src, key);
        let phases: Vec<&str> = trace.hops.iter().map(|h| h.label()).collect();
        eprintln!(
            "lookup {i}: key {key:#018x} resolved {:?} at {:#x} in {} hops ({})",
            trace.outcome,
            trace.terminal,
            trace.hops.len(),
            if phases.is_empty() {
                "local".to_string()
            } else {
                phases.join(" -> ")
            }
        );
    }

    let errors = sink.lock().unwrap().errors();
    assert_eq!(errors, 0, "stdout writes failed");
    eprintln!("event stream complete; pipe stdout to jq for analysis");
}
