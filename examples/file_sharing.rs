//! A peer-to-peer file-sharing index on top of Cycloid — the workload the
//! paper's introduction motivates ("peer-to-peer resource sharing
//! services").
//!
//! A catalogue of shared files is published into the DHT; every
//! participant can locate any file's index node in O(d) hops while
//! maintaining only seven links. The example also contrasts the per-node
//! key load with Viceroy's, reproducing §4.2's observation in miniature.
//!
//! ```text
//! cargo run --release --example file_sharing
//! ```

use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use rand::Rng;

/// A toy shared-file catalogue: (name, size in MiB).
fn catalogue() -> Vec<(String, u32)> {
    let genres = ["rust", "graphs", "p2p", "dht", "routing", "networks"];
    let kinds = ["intro", "advanced", "reference", "cookbook"];
    let mut files = Vec::new();
    for g in genres {
        for k in kinds {
            for part in 1..=4 {
                files.push((format!("{g}-{k}-part{part}.pdf"), 3 * part));
            }
        }
    }
    files
}

fn main() {
    let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 800, 2024);
    let files = catalogue();
    println!(
        "sharing {} files across a {}-node Cycloid network",
        files.len(),
        net.node_count()
    );

    // Publish: each file's index record lands on its key's owner.
    let raw_keys: Vec<u64> = files.iter().map(|(name, _)| hash_str(name)).collect();
    let counts = key_counts(&net, &raw_keys);
    let busiest = counts.iter().max().unwrap();
    let loaded_nodes = counts.iter().filter(|&&c| c > 0).count();
    println!("index records spread over {loaded_nodes} nodes (max {busiest} records on one node)");

    // Download session: peers look up random files.
    let ids: Vec<_> = net.ids().collect();
    let mut rng = stream(99, "downloads");
    let mut hops_total = 0usize;
    let mut worst = 0usize;
    let downloads = 2_000;
    for _ in 0..downloads {
        let peer = ids[rng.gen_range(0..ids.len())];
        let (name, _) = &files[rng.gen_range(0..files.len())];
        let trace = net.route(peer, hash_str(name));
        assert_eq!(trace.outcome, LookupOutcome::Found, "lost file {name}");
        hops_total += trace.path_len();
        worst = worst.max(trace.path_len());
    }
    println!(
        "{downloads} downloads: mean route {:.2} hops, worst {worst} hops (d = 8)",
        hops_total as f64 / downloads as f64
    );

    // Churn during the session: a tracker-free network keeps serving.
    let mut churn_rng = stream(7, "churn");
    for _ in 0..50 {
        let _ = net.join_random(&mut churn_rng);
        let victim = {
            let ids: Vec<_> = net.ids().collect();
            ids[churn_rng.gen_range(0..ids.len())]
        };
        net.leave(victim);
    }
    let peer = net.ids().next().unwrap();
    let trace = net.route(peer, hash_str(&files[0].0));
    println!(
        "after 50 joins + 50 leaves: lookup for {} still {:?} ({} hops, {} timeouts)",
        files[0].0,
        trace.outcome,
        trace.path_len(),
        trace.timeouts
    );

    // Compare key balance against Viceroy at the same scale (§4.2 in
    // miniature): Cycloid's two-level index keeps records more even.
    let viceroy = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 800, 2024);
    let vcounts = {
        let mut all: Vec<u64> = Vec::new();
        let keys: Vec<u64> = (0..50_000)
            .map(|i| hash_str(&format!("blob-{i}")))
            .collect();
        all.extend(key_counts(&viceroy, &keys));
        all
    };
    let ccounts = {
        let keys: Vec<u64> = (0..50_000)
            .map(|i| hash_str(&format!("blob-{i}")))
            .collect();
        key_counts(&net, &keys)
    };
    let c = Summary::of_counts(&ccounts);
    let v = Summary::of_counts(&vcounts);
    println!(
        "\nkey balance over 50k blobs — Cycloid p99 {} vs Viceroy p99 {} (means {:.1} / {:.1})",
        c.p99, v.p99, c.mean, v.mean
    );
}
