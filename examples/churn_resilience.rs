//! Churn resilience demo: drive a Cycloid network through the paper's
//! §4.3/§4.4 scenarios — a massive simultaneous departure wave, then
//! sustained Poisson churn with periodic stabilization — and watch path
//! lengths, timeouts, and correctness.
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```

use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use dht_sim::churn::{run_churn, ChurnParams};
use rand::Rng;

fn measure(net: &mut dyn Overlay, lookups: usize, rng_label: &str) -> (f64, f64, usize) {
    let mut rng = stream(11, rng_label);
    let tokens = net.node_tokens();
    let mut hops = 0usize;
    let mut timeouts = 0u64;
    let mut failures = 0usize;
    for i in 0..lookups {
        let src = tokens[i % tokens.len()];
        let t = net.lookup(src, rng.gen());
        hops += t.path_len();
        timeouts += u64::from(t.timeouts);
        if !t.outcome.is_success() {
            failures += 1;
        }
    }
    (
        hops as f64 / lookups as f64,
        timeouts as f64 / lookups as f64,
        failures,
    )
}

fn main() {
    println!("--- scenario 1: massive simultaneous departures (p = 0.4) ---");
    let mut net = build_overlay(OverlayKind::Cycloid7, 2048, 1);
    let (hops, _, _) = measure(net.as_mut(), 2000, "baseline");
    println!("steady state     : mean path {hops:.2} hops");

    // 40% of the nodes leave gracefully, all at once; no stabilization.
    let mut rng = stream(5, "wave");
    for token in net.node_tokens() {
        if rng.gen_bool(0.4) {
            net.leave(token);
        }
    }
    let (hops, touts, fails) = measure(net.as_mut(), 2000, "after-wave");
    println!(
        "after the wave   : {} survivors, mean path {hops:.2} hops, {touts:.2} timeouts/lookup, {fails} failures",
        net.len()
    );

    // One stabilization round repairs every stale pointer.
    net.stabilize();
    let (hops, touts, fails) = measure(net.as_mut(), 2000, "stabilized");
    println!(
        "after stabilize  : mean path {hops:.2} hops, {touts:.2} timeouts/lookup, {fails} failures"
    );

    println!("\n--- scenario 2: sustained churn (R = 0.3/s, stabilize every 30 s) ---");
    for kind in [
        OverlayKind::Cycloid7,
        OverlayKind::Koorde,
        OverlayKind::Viceroy,
    ] {
        let mut net = build_overlay(kind, 1024, 3);
        let mut rng = stream(9, kind.label());
        let out = run_churn(
            net.as_mut(),
            ChurnParams {
                lookup_rate: 1.0,
                churn_rate: 0.3,
                stabilization_period_secs: 30,
                lookups: 2_000,
                warmup_lookups: 100,
                audit: true,
                ..ChurnParams::default()
            },
            &mut rng,
        );
        let mean_path: f64 =
            out.path_lens.iter().sum::<usize>() as f64 / out.path_lens.len() as f64;
        let mean_touts: f64 = out.timeouts.iter().sum::<u64>() as f64 / out.timeouts.len() as f64;
        println!(
            "{:<16} {} joins / {} leaves -> mean path {mean_path:.2}, {mean_touts:.4} timeouts/lookup, {} failures, final size {}, audit {}",
            kind.label(),
            out.joins,
            out.leaves,
            out.failures,
            out.final_size,
            dht_sim::report::audit_cell(out.audit.as_ref())
        );
    }

    println!("\n--- scenario 3: Koorde under the same wave, for contrast ---");
    let mut net = build_overlay(OverlayKind::Koorde, 2048, 1);
    let mut rng = stream(5, "koorde-wave");
    for token in net.node_tokens() {
        if rng.gen_bool(0.4) {
            net.leave(token);
        }
    }
    let (hops, touts, fails) = measure(net.as_mut(), 2000, "koorde-after");
    println!(
        "Koorde after wave: mean path {hops:.2} hops, {touts:.4} timeouts/lookup, {fails} FAILURES \
         (the de Bruijn pointer has no leaf-set safety net)"
    );
}
