//! Lossy-network demo: run the same lookup workload on a Cycloid overlay
//! under increasingly unreliable message delivery and watch the retry,
//! timeout, and latency bill grow while routing stays correct.
//!
//! Every fault is drawn deterministically from the plan's seed, so a rerun
//! reproduces these numbers bit for bit.
//!
//! ```text
//! cargo run --release --example lossy_network
//! ```

use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use dht_core::workload::random_pairs;

fn main() {
    let retry = RetryPolicy::standard();
    println!(
        "retry policy: {} attempts, {} ms base timeout, x{} backoff capped at {} ms",
        retry.max_attempts,
        retry.base_timeout_us / 1_000,
        retry.backoff_factor,
        retry.max_timeout_us / 1_000
    );
    println!("delay model: uniform 20-80 ms RTT, 1% duplication\n");
    println!(
        "{:>6}  {:>9}  {:>9}  {:>12}  {:>12}  {:>9}",
        "loss %", "success %", "mean path", "retries/look", "msg timeouts", "mean ms"
    );

    for loss in [0.0, 0.01, 0.05, 0.10, 0.20, 0.40] {
        let mut net = build_overlay(OverlayKind::Cycloid7, 512, 7);
        net.set_net_conditions(NetConditions::new(
            FaultPlan {
                seed: 2004,
                loss,
                delay: DelayModel::Uniform(20_000, 80_000),
                duplicate: 0.01,
            },
            retry,
        ));
        let reqs = random_pairs(net.as_ref(), 2_000, &mut stream(7, "lossy-demo"));
        let mut ok = 0usize;
        let mut hops = 0usize;
        let mut retries = 0u64;
        let mut msg_timeouts = 0u64;
        let mut latency_us = 0u64;
        for req in &reqs {
            let t = net.lookup(req.src, req.raw_key);
            ok += usize::from(t.outcome.is_success());
            hops += t.path_len();
            retries += u64::from(t.net.retries);
            msg_timeouts += u64::from(t.net.msg_timeouts);
            latency_us += t.net.latency_us;
        }
        let n = reqs.len() as f64;
        println!(
            "{:>6.0}  {:>9.2}  {:>9.2}  {:>12.3}  {:>12.4}  {:>9.1}",
            100.0 * loss,
            100.0 * ok as f64 / n,
            hops as f64 / n,
            retries as f64 / n,
            msg_timeouts as f64 / n,
            latency_us as f64 / n / 1_000.0
        );
        // Faults must never touch routing tables.
        let report = net.audit_state(AuditScope::Full);
        assert!(report.is_clean(), "{report}");
    }

    println!("\nrouting state audited clean after every sweep point.");
}
