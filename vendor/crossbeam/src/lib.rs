//! Air-gapped stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` for fork-join
//! parallelism in the experiment drivers; since Rust 1.63 the standard
//! library provides the same capability, so this crate is a thin
//! adapter over [`std::thread::scope`] exposing crossbeam's signatures
//! (closures receive `&Scope`, `scope` and `join` return `Result`s with
//! boxed panic payloads).

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads borrowing from the parent stack frame.

    use std::any::Any;

    /// Result type carrying a thread's panic payload on failure.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning threads tied to the enclosing [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before `scope` returns.
    ///
    /// Unlike crossbeam, an unjoined panicking child propagates its panic
    /// here (via [`std::thread::scope`]) instead of surfacing in the
    /// returned `Result`; the workspace joins every handle explicitly, so
    /// the two behaviors coincide.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<u64>()
        })
        .expect("scope failed");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
