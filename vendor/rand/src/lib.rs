//! Air-gapped stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository cannot reach a crates
//! registry, so the workspace vendors the *exact* slice of the `rand`
//! 0.8 surface it uses: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`distributions::Standard`], and
//! [`seq::SliceRandom`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through splitmix64 — not the upstream ChaCha12,
//! so absolute stream values differ from upstream `rand`, but every
//! stream is fully deterministic for a given seed, which is the only
//! property the simulation harness relies on.

#![forbid(unsafe_code)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64_step(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64_step(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro requires a nonzero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }
}

/// Sampling distributions.
pub mod distributions {
    use super::RngCore;
    use core::marker::PhantomData;

    /// Maps raw generator words onto values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

        /// Converts the distribution and a generator into an iterator.
        fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
        where
            Self: Sized,
            R: RngCore,
        {
            DistIter {
                distr: self,
                rng,
                _marker: PhantomData,
            }
        }
    }

    /// The "natural" distribution over a type's full value range.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<i128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
            let v: u128 = Standard.sample(rng);
            v as i128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Iterator over repeated draws, returned by [`crate::Rng::sample_iter`].
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        distr: D,
        rng: R,
        _marker: PhantomData<fn() -> T>,
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    /// Integer types that [`crate::Rng::gen_range`] can sample uniformly.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Draws uniformly from `[low, high)`; `low < high` is required.
        fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Draws uniformly from `[low, high]`; `low <= high` is required.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Rejection sampling: unbiased over any span.
        let zone = u64::MAX - (u64::MAX.wrapping_rem(span) + 1).wrapping_rem(span);
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    macro_rules! sample_uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    low + uniform_u64(rng, (high - low) as u64) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        )*};
    }
    sample_uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! sample_uniform_int {
        ($($t:ty : $u:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as $u).wrapping_sub(low as $u);
                    low.wrapping_add(uniform_u64(rng, span as u64) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as $u).wrapping_sub(low as $u).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(uniform_u64(rng, span as u64) as $t)
                }
            }
        )*};
    }
    sample_uniform_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    impl SampleUniform for f64 {
        fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
            assert!(low < high, "gen_range: empty range");
            let unit: f64 = Standard.sample(rng);
            low + unit * (high - low)
        }
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
            Self::sample_below(rng, low, high)
        }
    }

    /// Range types accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws a single value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_below(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: distributions::SampleUniform,
        Ra: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }

    /// Converts the generator into an infinite sampling iterator.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
        D: distributions::Distribution<T>,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random operations on sequences.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::Standard;
    use super::prelude::*;

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = StdRng::seed_from_u64(7)
            .sample_iter(Standard)
            .take(4)
            .collect();
        let b: Vec<u64> = StdRng::seed_from_u64(7)
            .sample_iter(Standard)
            .take(4)
            .collect();
        let c: Vec<u64> = StdRng::seed_from_u64(8)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn crate::RngCore = &mut rng;
        let x = dyn_rng.next_u64();
        let y: u64 = dyn_rng.gen();
        assert_ne!(x, y);
    }
}
