//! Air-gapped stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates registry, so this crate
//! re-implements the slice of the proptest 1.x API the workspace's test
//! suites use: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`]
//! macros, [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! ranges and tuples as strategies, [`strategy::Just`], [`prop_oneof!`],
//! `prop::collection::vec`, and `any::<T>()`.
//!
//! Semantics differ from upstream in two deliberate ways: failing cases
//! are **not shrunk** (the panic message reports the generated inputs
//! instead), and case generation is seeded deterministically from the
//! test function's name, so runs are reproducible without a persistence
//! file.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and failure plumbing used by the [`crate::proptest!`]
    //! macro expansion.

    /// Subset of proptest's run configuration: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the simulation-heavy suites in
            // this workspace set explicit counts, so the default only
            // covers cheap arithmetic properties.
            Self { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed; the whole property fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            Self::Fail(msg)
        }

        /// Builds a rejection.
        #[must_use]
        pub fn reject(msg: String) -> Self {
            Self::Reject(msg)
        }
    }

    /// Stable 64-bit FNV-1a over the test name: the per-test seed base.
    #[must_use]
    pub fn seed_for(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::distributions::{SampleRange, SampleUniform};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::Range<T>
    where
        core::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T>
    where
        core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among same-typed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    //! `any::<T>()`: the canonical whole-domain strategy for a type.

    use super::strategy::Strategy;
    use core::marker::PhantomData;
    use rand::distributions::{Distribution, Standard};
    use rand::rngs::StdRng;

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Strategy for Any<T>
    where
        Standard: Distribution<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            Standard.sample(rng)
        }
    }

    /// The whole-domain strategy for `T` (uniform over all values).
    #[must_use]
    pub fn any<T>() -> Any<T>
    where
        Standard: Distribution<T>,
    {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// An inclusive-exclusive length range for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything test files import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Macro runtime: lets `proptest!` expansions name the RNG without
    //! requiring `rand` in the calling crate's dependency graph.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                        $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)), __case),
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} of {} failed: {}", __case, stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts inside a [`proptest!`] body; failure fails the whole property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{}` == `{}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts two expressions differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{}` != `{}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 1usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn any_u64_covers_wide_values(a in any::<u64>(), b in any::<u64>()) {
            // Not a real distribution test; just exercises generation.
            prop_assert_eq!(a.min(b) <= a, a.min(b) <= b);
        }

        #[test]
        fn map_and_flat_map_compose((m, v) in (2u64..50).prop_flat_map(|m| (Just(m), 0..m))) {
            prop_assert!(v < m);
        }

        #[test]
        fn vec_and_oneof(xs in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..10)) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn assume_rejects_quietly(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(
            crate::test_runner::seed_for("a::b", 3),
            crate::test_runner::seed_for("a::b", 3)
        );
        assert_ne!(
            crate::test_runner::seed_for("a::b", 3),
            crate::test_runner::seed_for("a::b", 4)
        );
    }
}
