//! Air-gapped stand-in for the `criterion` crate.
//!
//! Provides the subset of the 0.5 API the workspace's bench targets use
//! (`criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched_ref`], [`BenchmarkId`],
//! [`black_box`]) backed by a simple wall-clock loop: each benchmark is
//! warmed up once, then timed over enough iterations to fill a short
//! measurement window, and the mean time per iteration is printed.
//! There is no statistical analysis, HTML report, or CLI filtering.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement backends (only wall-clock time exists here).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// A benchmark name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style compound id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// How [`Bencher::iter_batched_ref`] amortizes setup cost (ignored: every
/// iteration reruns setup here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    measurement: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement || iters >= 1 << 20 {
                self.report = Some((iters, elapsed));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }

    /// Times `routine` over a mutable input rebuilt by `setup` each
    /// iteration; setup time is excluded from the measurement.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        while total < self.measurement && iters < 1 << 16 {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
            iters += 1;
        }
        self.report = Some((iters.max(1), total));
    }
}

fn print_report(id: &str, report: Option<(u64, Duration)>) {
    match report {
        Some((iters, elapsed)) if iters > 0 => {
            let per_iter = elapsed.as_nanos() / u128::from(iters);
            println!("bench: {id:<50} {per_iter:>12} ns/iter ({iters} iters)");
        }
        _ => println!("bench: {id:<50} (no measurement)"),
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    measurement: Duration,
    _criterion: &'a mut Criterion,
    _marker: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up window per benchmark (accepted for API
    /// compatibility; this harness does not warm up).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // The real criterion spends `d` on measurement alone; this
        // harness uses a fraction of it to keep `cargo bench` quick.
        self.measurement = d / 8;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measurement: self.measurement,
            report: None,
        };
        f(&mut b);
        print_report(&format!("{}/{}", self.name, id.id), b.report);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies CLI configuration (a no-op here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            measurement: Duration::from_millis(300),
            _criterion: self,
            _marker: PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measurement: Duration::from_millis(300),
            report: None,
        };
        f(&mut b);
        print_report(&id.id, b.report);
        self
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10).measurement_time(Duration::from_millis(8));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_function(BenchmarkId::new("param", 3), |b| {
            b.iter_batched_ref(
                || vec![1u8; 16],
                |v| v.iter().sum::<u8>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(stub_group, quick);

    #[test]
    fn harness_runs() {
        stub_group();
    }
}
