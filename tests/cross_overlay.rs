//! Cross-overlay invariants: every DHT in the suite must satisfy the same
//! contract under the `Overlay` trait, whatever its internal geometry.

use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use dht_sim::EXTENDED_KINDS;
use rand::Rng;

const SIZES: [usize; 3] = [24, 160, 896];

#[test]
fn lookups_terminate_at_the_owner_everywhere() {
    for kind in PAPER_KINDS {
        for n in SIZES {
            let mut net = build_overlay(kind, n, 0xA11CE);
            let mut rng = stream(1, kind.label());
            let tokens = net.node_tokens();
            for i in 0..300 {
                let src = tokens[i % tokens.len()];
                let raw: u64 = rng.gen();
                let owner = net.owner_of(raw).expect("non-empty network");
                let t = net.lookup(src, raw);
                assert!(
                    t.outcome.is_success(),
                    "{} n={n} lookup {i}: {:?}",
                    kind.label(),
                    t.outcome
                );
                assert_eq!(t.terminal, owner, "{} n={n} lookup {i}", kind.label());
            }
        }
    }
}

#[test]
fn lookup_traces_are_deterministic() {
    for kind in PAPER_KINDS {
        let run = || {
            let mut net = build_overlay(kind, 160, 7);
            let tokens = net.node_tokens();
            let mut rng = stream(2, "det");
            (0..100)
                .map(|i| {
                    let t = net.lookup(tokens[i % tokens.len()], rng.gen());
                    (t.path_len(), t.timeouts, t.terminal)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "{} must be deterministic", kind.label());
    }
}

#[test]
fn key_ownership_partitions_the_key_space() {
    // Every key has exactly one owner, and owners are live nodes.
    for kind in PAPER_KINDS {
        let net = build_overlay(kind, 384, 11);
        let tokens: std::collections::HashSet<_> = net.node_tokens().into_iter().collect();
        let mut rng = stream(3, "own");
        for _ in 0..500 {
            let raw: u64 = rng.gen();
            let owner = net.owner_of(raw).expect("non-empty");
            assert!(
                tokens.contains(&owner),
                "{}: owner {owner} is not live",
                kind.label()
            );
        }
    }
}

#[test]
fn query_load_totals_match_path_lengths() {
    // Each lookup touches 1 (source) + path_len nodes; the query-load
    // counters must account for exactly that.
    for kind in PAPER_KINDS {
        let mut net = build_overlay(kind, 160, 13);
        net.reset_query_loads();
        let tokens = net.node_tokens();
        let mut rng = stream(4, "load");
        let mut expected = 0u64;
        for i in 0..200 {
            let t = net.lookup(tokens[i % tokens.len()], rng.gen());
            expected += 1 + t.path_len() as u64;
        }
        let total: u64 = net.query_loads().iter().sum();
        assert_eq!(total, expected, "{} query accounting", kind.label());
    }
}

#[test]
fn join_then_leave_restores_lookup_correctness() {
    for kind in PAPER_KINDS {
        // 100 nodes leaves free identifier slots in every overlay's space
        // (Cycloid picks d = 5, a 160-slot space).
        let mut net = build_overlay(kind, 100, 17);
        let mut rng = stream(5, kind.label());
        let mut joined = Vec::new();
        for _ in 0..16 {
            if let Some(t) = net.join(&mut rng) {
                joined.push(t);
            }
        }
        assert_eq!(net.len(), 116, "{}", kind.label());
        for t in joined {
            assert!(net.leave(t), "{}", kind.label());
        }
        assert_eq!(net.len(), 100, "{}", kind.label());
        net.stabilize();
        let tokens = net.node_tokens();
        for i in 0..100 {
            let t = net.lookup(tokens[i % tokens.len()], rng.gen());
            assert!(t.outcome.is_success(), "{} post-churn", kind.label());
            assert_eq!(t.timeouts, 0, "{} stabilized => no timeouts", kind.label());
        }
    }
}

#[test]
fn constant_degree_dhts_report_constant_bounds() {
    for (kind, expected) in [
        (OverlayKind::Cycloid7, Some(7)),
        (OverlayKind::Cycloid11, Some(11)),
        (OverlayKind::Viceroy, Some(7)),
        (OverlayKind::Koorde, Some(7)),
        (OverlayKind::Chord, None),
    ] {
        let net = build_overlay(kind, 128, 19);
        assert_eq!(net.degree_bound(), expected, "{}", kind.label());
    }
}

#[test]
fn empty_reset_and_len_contracts() {
    for kind in EXTENDED_KINDS {
        let mut net = build_overlay(kind, 24, 23);
        assert!(!net.is_empty());
        assert_eq!(net.node_tokens().len(), net.len());
        net.reset_query_loads();
        assert!(net.query_loads().iter().all(|&q| q == 0));
        assert_eq!(net.query_loads().len(), net.len());
    }
}

#[test]
fn substrate_load_accounting_tracks_membership() {
    // The shared simulation substrate keeps one load counter per live
    // node, in lockstep with membership, for every overlay kind:
    // `query_loads()` always matches `len()`, counters conserve lookup
    // traffic until `reset_query_loads` zeroes them, and churn of other
    // nodes never disturbs the surviving nodes' tokens.
    for kind in dht_sim::ALL_KINDS {
        let mut net = build_overlay(kind, 64, 31);
        let mut rng = stream(7, kind.label());

        // Lockstep: one counter per live node, before and after traffic.
        assert_eq!(net.query_loads().len(), net.len(), "{}", kind.label());
        let tokens = net.node_tokens();
        let mut expected = 0u64;
        for i in 0..120 {
            let t = net.lookup(tokens[i % tokens.len()], rng.gen());
            expected += 1 + t.path_len() as u64;
        }
        assert_eq!(net.query_loads().len(), net.len(), "{}", kind.label());

        // Conservation: counters sum to exactly the visits made, and a
        // reset drops the total to zero without touching membership.
        assert_eq!(
            net.query_loads().iter().sum::<u64>(),
            expected,
            "{} conserves lookup visits",
            kind.label()
        );
        net.reset_query_loads();
        assert_eq!(net.query_loads().iter().sum::<u64>(), 0, "{}", kind.label());
        assert_eq!(net.query_loads().len(), net.len(), "{}", kind.label());

        // Token stability: joining and removing other nodes leaves the
        // original population's tokens intact.
        let before: std::collections::BTreeSet<_> = net.node_tokens().into_iter().collect();
        let mut joined = Vec::new();
        for _ in 0..8 {
            if let Some(t) = net.join(&mut rng) {
                joined.push(t);
            }
        }
        for t in joined {
            assert!(net.leave(t), "{}", kind.label());
        }
        let after: std::collections::BTreeSet<_> = net.node_tokens().into_iter().collect();
        assert_eq!(before, after, "{} token stability", kind.label());
        assert_eq!(net.query_loads().len(), net.len(), "{}", kind.label());
    }
}

#[test]
fn extension_baselines_honour_the_same_contract() {
    // Pastry and CAN (the Table 1 extension baselines) satisfy the same
    // Overlay contract the paper's systems do, at moderate sizes.
    for kind in [OverlayKind::Pastry, OverlayKind::Can] {
        for n in [24usize, 160] {
            let mut net = build_overlay(kind, n, 29);
            let mut rng = stream(6, kind.label());
            let tokens = net.node_tokens();
            net.reset_query_loads();
            let mut expected = 0u64;
            for i in 0..150 {
                let raw: u64 = rng.gen();
                let owner = net.owner_of(raw).expect("non-empty");
                let t = net.lookup(tokens[i % tokens.len()], raw);
                assert!(t.outcome.is_success(), "{} n={n}", kind.label());
                assert_eq!(t.terminal, owner, "{} n={n}", kind.label());
                expected += 1 + t.path_len() as u64;
            }
            assert_eq!(
                net.query_loads().iter().sum::<u64>(),
                expected,
                "{} query accounting",
                kind.label()
            );
            // Churn through the trait.
            let j = net.join(&mut rng).expect("space not full");
            assert!(net.leave(j), "{}", kind.label());
            net.stabilize();
            let tokens = net.node_tokens();
            for i in 0..50 {
                let t = net.lookup(tokens[i % tokens.len()], rng.gen());
                assert!(t.outcome.is_success(), "{} post-churn", kind.label());
            }
        }
    }
}
