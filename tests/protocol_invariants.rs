//! Property-based protocol invariants: arbitrary join/leave sequences
//! must leave every overlay in a state where the notification-maintained
//! pointers are exactly correct and lookups resolve.

use cycloid::{CycloidConfig, CycloidNetwork};
use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use proptest::prelude::*;
use rand::Rng;

/// A churn script: for each step, `true` = a join, `false` = a leave of a
/// pseudo-randomly chosen node.
fn churn_script() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cycloid_leaf_sets_exact_after_any_churn(script in churn_script(), seed in 0u64..1000) {
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 80, seed);
        let mut rng = stream(seed, "churn-script");
        for &join in &script {
            if join {
                let _ = net.join_random(&mut rng);
            } else if net.node_count() > 4 {
                let ids: Vec<_> = net.ids().collect();
                let victim = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
                net.leave(victim);
            }
        }
        // Invariant: every node's leaf sets equal what a fresh resolution
        // over the live membership produces — the notification chains of
        // §3.3 keep them exact without global stabilization.
        for id in net.ids().collect::<Vec<_>>() {
            let state = net.node(id).unwrap().clone();
            let (in_l, in_r) = net.resolve_inside_leafs(id);
            let (out_l, out_r) = net.resolve_outside_leafs(id);
            prop_assert_eq!(&state.inside_left, &in_l, "inside-left of {}", id);
            prop_assert_eq!(&state.inside_right, &in_r, "inside-right of {}", id);
            prop_assert_eq!(&state.outside_left, &out_l, "outside-left of {}", id);
            prop_assert_eq!(&state.outside_right, &out_r, "outside-right of {}", id);
        }
    }

    #[test]
    fn cycloid_lookups_resolve_after_any_churn(script in churn_script(), seed in 0u64..1000) {
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 60, seed);
        let mut rng = stream(seed, "lookup-script");
        for &join in &script {
            if join {
                let _ = net.join_random(&mut rng);
            } else if net.node_count() > 4 {
                let ids: Vec<_> = net.ids().collect();
                let victim = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
                net.leave(victim);
            }
        }
        let ids: Vec<_> = net.ids().collect();
        for i in 0..40 {
            let src = ids[i % ids.len()];
            let raw: u64 = rng.gen();
            let t = net.route(src, raw);
            prop_assert!(t.outcome.is_success(), "lookup from {} ended {:?}", src, t.outcome);
        }
    }

    #[test]
    fn ring_overlays_keep_rings_consistent(script in churn_script(), seed in 0u64..1000) {
        for kind in [OverlayKind::Chord, OverlayKind::Koorde] {
            let mut net = build_overlay(kind, 50, seed);
            let mut rng = stream(seed, kind.label());
            for &join in &script {
                if join {
                    let _ = net.join(&mut rng);
                } else if net.len() > 4 {
                    let toks = net.node_tokens();
                    let victim = toks[(rng.gen::<u64>() % toks.len() as u64) as usize];
                    net.leave(victim);
                }
            }
            // Chord's leaf-set-free routing still always resolves: its
            // fallback is the (repaired) successor list. Koorde may
            // legitimately *fail* a lookup when a de Bruijn pointer and
            // all its backups died (§4.3) — but it must never return a
            // wrong owner, and stabilization must restore full
            // correctness.
            let toks = net.node_tokens();
            for i in 0..30 {
                let t = net.lookup(toks[i % toks.len()], rng.gen());
                match kind {
                    OverlayKind::Chord => prop_assert!(
                        t.outcome.is_success(),
                        "Chord lookup ended {:?}",
                        t.outcome
                    ),
                    _ => prop_assert!(
                        matches!(
                            t.outcome,
                            LookupOutcome::Found | LookupOutcome::Stuck
                        ),
                        "Koorde lookup ended {:?}",
                        t.outcome
                    ),
                }
            }
            net.stabilize();
            let toks = net.node_tokens();
            for i in 0..30 {
                let t = net.lookup(toks[i % toks.len()], rng.gen());
                prop_assert!(
                    t.outcome.is_success(),
                    "{} post-stabilization lookup ended {:?}",
                    kind.label(),
                    t.outcome
                );
            }
        }
    }

    #[test]
    fn cycloid_audit_stays_clean_under_any_churn(script in churn_script(), seed in 0u64..1000) {
        // The audit layer re-derives the §3 invariants from scratch; after
        // any interleaving of joins and graceful leaves the online scope
        // must hold at every step, and the full scope (which adds the
        // lazily-repaired cubical/cyclic pointers) after stabilization.
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 80, seed);
        let mut rng = stream(seed, "audit-script");
        for (step, &join) in script.iter().enumerate() {
            if join {
                let _ = net.join_random(&mut rng);
            } else if net.node_count() > 4 {
                let ids: Vec<_> = net.ids().collect();
                let victim = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
                net.leave(victim);
            }
            let report = net.audit_state(AuditScope::Online);
            prop_assert!(report.is_clean(), "after step {}: {}", step, report);
        }
        net.stabilize_all();
        let report = net.audit_state(AuditScope::Full);
        prop_assert!(report.is_clean(), "after stabilization: {}", report);
        prop_assert_eq!(report.checked_nodes(), net.node_count());
    }

    #[test]
    fn owner_is_stable_under_unrelated_churn(seed in 0u64..500) {
        // Adding or removing nodes far from a key must not change its
        // owner unless the owner itself is affected.
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 100, seed);
        let raw = 0xfeed_f00d_u64 ^ seed;
        let owner_before = net.owner_of_key(net.key_of(raw)).unwrap();
        let mut rng = stream(seed, "unrelated");
        // Leave a node that is not the owner.
        let victim = net
            .ids()
            .find(|&id| id != owner_before)
            .expect("network has >1 node");
        net.leave(victim);
        let owner_after = net.owner_of_key(net.key_of(raw)).unwrap();
        prop_assert_eq!(owner_before, owner_after);
        // Join someone; the owner may only change if the newcomer is
        // closer.
        if let Some(newcomer) = net.join_random(&mut rng) {
            let owner_final = net.owner_of_key(net.key_of(raw)).unwrap();
            prop_assert!(owner_final == owner_before || owner_final == newcomer);
        }
    }
}

/// Replays one recorded proptest regression (a churn script that once
/// broke the leaf-set invariant) and then drives the repair-enabled
/// path over the survivor network: every corruption strategy must be
/// repaired back to both audit-clean *and* exact leaf sets. The scripts
/// come from `protocol_invariants.proptest-regressions`; naming them
/// keeps the cases pinned even if that file is ever pruned.
fn replay_regression_through_repair(script: &[bool], seed: u64) {
    use dht_core::corrupt::{CorruptionPlan, CorruptionStrategy};

    for strategy in CorruptionStrategy::ALL {
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 80, seed);
        let mut rng = stream(seed, "churn-script");
        for &join in script {
            if join {
                let _ = net.join_random(&mut rng);
            } else if net.node_count() > 4 {
                let ids: Vec<_> = net.ids().collect();
                let victim = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
                net.leave(victim);
            }
        }
        net.stabilize_all();
        assert!(
            net.audit_state(AuditScope::Full).is_clean(),
            "{strategy:?} seed={seed}: post-churn baseline dirty"
        );

        net.corrupt(&CorruptionPlan::new(strategy, 0.5, seed));
        assert!(
            !net.audit_state(AuditScope::Full).is_clean(),
            "{strategy:?} seed={seed}: corruption evaded the audit"
        );
        for id in net.ids().collect::<Vec<_>>() {
            net.repair_one(id);
        }
        let report = net.audit_state(AuditScope::Full);
        assert!(report.is_clean(), "{strategy:?} seed={seed}: {report}");
        // The original regression's invariant, re-proven after repair:
        // every leaf set equals a fresh resolution over the membership.
        for id in net.ids().collect::<Vec<_>>() {
            let state = net.node(id).unwrap().clone();
            let (in_l, in_r) = net.resolve_inside_leafs(id);
            let (out_l, out_r) = net.resolve_outside_leafs(id);
            assert_eq!(state.inside_left, in_l, "{strategy:?} inside-left of {id}");
            assert_eq!(
                state.inside_right, in_r,
                "{strategy:?} inside-right of {id}"
            );
            assert_eq!(
                state.outside_left, out_l,
                "{strategy:?} outside-left of {id}"
            );
            assert_eq!(
                state.outside_right, out_r,
                "{strategy:?} outside-right of {id}"
            );
        }
    }
}

#[test]
fn regression_seed_54_churn_script_repairs_clean() {
    replay_regression_through_repair(
        &[
            true, true, false, false, true, true, true, false, false, false, true, false, false,
            false, false, false, false, false, true, true, false, true, true, true, false, false,
            false, false, false, true, true, true, true, true, false, true, false, false, true,
            false, true, true, true, false,
        ],
        54,
    );
}

#[test]
fn regression_seed_538_churn_script_repairs_clean() {
    replay_regression_through_repair(
        &[
            false, true, false, true, true, false, false, true, false, true, false, false, false,
            true, false, true, false, true, true, true, false, true, false, false, false, true,
            true, true, true, false, true, true, false, false, false,
        ],
        538,
    );
}

#[test]
fn cycloid_join_equals_bulk_construction() {
    // Building a network by protocol joins and then stabilizing must give
    // the same routing state as bulk construction with the same member
    // set.
    let mut by_joins = CycloidNetwork::new(CycloidConfig::seven_entry(6), 99);
    let mut rng = stream(99, "bulk");
    let mut members = Vec::new();
    for _ in 0..64 {
        if let Some(id) = by_joins.join_random(&mut rng) {
            members.push(id);
        }
    }
    by_joins.stabilize_all();

    let mut bulk = CycloidNetwork::new(CycloidConfig::seven_entry(6), 100);
    for &id in &members {
        assert!(bulk.join_id(id));
    }
    bulk.stabilize_all();

    for &id in &members {
        let a = by_joins.node(id).unwrap();
        let b = bulk.node(id).unwrap();
        assert_eq!(a.cubical_neighbor, b.cubical_neighbor, "{id}");
        assert_eq!(a.cyclic_larger, b.cyclic_larger, "{id}");
        assert_eq!(a.cyclic_smaller, b.cyclic_smaller, "{id}");
        assert_eq!(a.inside_left, b.inside_left, "{id}");
        assert_eq!(a.outside_right, b.outside_right, "{id}");
    }
}
