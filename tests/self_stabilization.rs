//! Self-stabilizing repair proven by the audit oracle: for every
//! overlay kind and every corruption strategy, a seeded corruption of a
//! quarter or more of the nodes' routing state must (a) be *detected*
//! by the full-scope audit and (b) be *repaired* back to audit-clean by
//! the per-node repair timers within a bounded number of simulated
//! seconds — under arbitrary seeds and for every `--jobs` value.
//!
//! The flip side is pinned just as hard: repair must be a no-op on
//! healthy state. Repair-enabled churn runs on uncorrupted networks are
//! bit-identical (event traces, measurement streams, load tables, audit
//! reports) to runs without repair, and a full repair sweep before the
//! golden workload leaves every checked-in golden file byte-identical.

mod common;

use std::sync::{Arc, Mutex};

use cycloid_repro::prelude::*;
use dht_core::corrupt::{CorruptionPlan, CorruptionStrategy};
use dht_core::obs::{Event as TraceEvent, RingBufferSink, SinkHandle};
use dht_core::rng::stream;
use dht_core::workload::random_pairs;
use dht_sim::churn::{run_churn, ChurnParams, StabilizePhase};
use dht_sim::experiments::recover::repair_to_clean;
use dht_sim::experiments::run_requests_jobs;
use dht_sim::{build_overlay_spaced, ALL_KINDS};
use proptest::prelude::*;
use rand::Rng;

/// Repair period driving every recovery below (seconds).
const PERIOD: u64 = 10;
/// Recovery horizon: corruption still dirty after this many simulated
/// seconds fails the test.
const HORIZON_SECS: u64 = 8 * PERIOD;

/// Corrupts a fresh overlay and drives the repair timers to audit-clean.
/// Returns `(network, seconds to clean, entries repaired)`.
fn corrupt_and_recover(
    kind: OverlayKind,
    strategy: CorruptionStrategy,
    severity: f64,
    seed: u64,
) -> (Box<dyn Overlay>, u64, u64) {
    let mut net = build_overlay(kind, 96, seed);
    let n = net.len();
    let plan = CorruptionPlan::new(strategy, severity, seed ^ 0xc0ffee);
    let report = net.corrupt_state(&plan);
    let min_targeted = (severity * n as f64).ceil() as usize;
    assert!(
        report.targeted_nodes >= min_targeted,
        "{kind:?}/{strategy:?} seed={seed}: targeted {} < {min_targeted}",
        report.targeted_nodes
    );
    let (secs, _calls, entries) =
        repair_to_clean(net.as_mut(), StabilizePhase::Hashed, PERIOD, HORIZON_SECS);
    let secs = secs.unwrap_or_else(|| {
        panic!(
            "{kind:?}/{strategy:?} seed={seed}: still dirty after {HORIZON_SECS}s: {}",
            net.audit_state(AuditScope::Full)
        )
    });
    (net, secs, entries)
}

#[test]
fn every_kind_recovers_from_every_strategy() {
    for kind in ALL_KINDS {
        for strategy in CorruptionStrategy::ALL {
            let mut net = build_overlay(kind, 96, 42);
            let plan = CorruptionPlan::new(strategy, 0.5, 9);
            let report = net.corrupt_state(&plan);
            assert!(report.targeted_nodes >= 48, "{kind:?}/{strategy:?}");
            assert!(
                report.mutated_entries > 0,
                "{kind:?}/{strategy:?}: corruption did no damage"
            );
            assert!(
                !net.audit_state(AuditScope::Full).is_clean(),
                "{kind:?}/{strategy:?}: corruption evaded the full audit"
            );
            let (secs, _, entries) =
                repair_to_clean(net.as_mut(), StabilizePhase::Hashed, PERIOD, HORIZON_SECS);
            let secs = secs.unwrap_or_else(|| {
                panic!("{kind:?}/{strategy:?}: unrecovered within {HORIZON_SECS}s")
            });
            assert!(
                secs > 0,
                "{kind:?}/{strategy:?}: dirty state cannot be clean at 0s"
            );
            assert!(entries > 0, "{kind:?}/{strategy:?}: repair fixed nothing");
            // Idempotence: a further repair round touches nothing.
            let (again, _, more) =
                repair_to_clean(net.as_mut(), StabilizePhase::Hashed, PERIOD, HORIZON_SECS);
            assert_eq!(again, Some(0), "{kind:?}/{strategy:?}");
            assert_eq!(more, 0, "{kind:?}/{strategy:?}: repair not idempotent");
        }
    }
}

/// Satellite: corruption can point links at *departed* tokens (the ghost
/// strategy draws from the whole identifier space, and the live set has
/// holes after leaves). The full audit must still detect it, and repair
/// must converge without resurrecting the departed nodes — membership
/// and the per-node load table keep their exact pre-corruption shape.
#[test]
fn ghost_links_to_departed_tokens_repair_without_resurrection() {
    for kind in ALL_KINDS {
        let mut net = build_overlay(kind, 96, 11);
        let mut rng = stream(13, "departures");
        for _ in 0..20 {
            if net.len() <= 8 {
                break;
            }
            let toks = net.node_tokens();
            let victim = toks[(rng.gen::<u64>() % toks.len() as u64) as usize];
            net.leave(victim);
        }
        net.stabilize();
        assert!(
            net.audit_state(AuditScope::Full).is_clean(),
            "{kind:?}: baseline after departures must be clean"
        );
        let members = net.node_tokens();
        let loads_len = net.query_loads().len();

        let report = net.corrupt_state(&CorruptionPlan::new(
            CorruptionStrategy::GhostLinks,
            0.5,
            17,
        ));
        assert!(
            report.mutated_entries > 0,
            "{kind:?}: ghost plan did nothing"
        );
        assert!(
            !net.audit_state(AuditScope::Full).is_clean(),
            "{kind:?}: ghost links evaded the full audit"
        );
        let (secs, _, _) =
            repair_to_clean(net.as_mut(), StabilizePhase::Hashed, PERIOD, HORIZON_SECS);
        assert!(secs.is_some(), "{kind:?}: ghost corruption unrecovered");
        assert_eq!(
            net.node_tokens(),
            members,
            "{kind:?}: repair resurrected or dropped members"
        );
        assert_eq!(
            net.query_loads().len(),
            loads_len,
            "{kind:?}: load table reshaped"
        );
    }
}

/// Satellite: repair-enabled churn on an uncorrupted network is
/// bit-identical to plain stabilization — same measurement streams, same
/// emitted event trace, same final load table, same accumulated audit —
/// for every overlay kind and across `jobs` values.
#[test]
fn repair_enabled_churn_is_bit_identical_on_healthy_networks() {
    let run = |kind: OverlayKind, jobs: usize, repair: bool| {
        let ring = Arc::new(Mutex::new(RingBufferSink::new(1 << 16)));
        let mut net = build_overlay_spaced(kind, 64, 96, 7);
        let mut rng = stream(8, "repair-noop");
        let params = ChurnParams {
            churn_rate: 0.2,
            stabilization_period_secs: PERIOD,
            lookups: 200,
            warmup_lookups: 10,
            audit: true,
            sink: SinkHandle::new(Arc::clone(&ring)),
            jobs,
            repair,
            ..ChurnParams::default()
        };
        let out = run_churn(net.as_mut(), params, &mut rng);
        let events: Vec<TraceEvent> = ring.lock().unwrap().snapshot();
        let audit = out.audit.as_ref().expect("audit requested");
        (
            out.path_lens.clone(),
            out.timeouts.clone(),
            out.retries.clone(),
            out.latency_us.clone(),
            (
                out.joins,
                out.leaves,
                out.stabilize_calls,
                out.stabilize_rounds,
            ),
            net.query_loads(),
            format!("{audit}"),
            events,
        )
    };
    for kind in ALL_KINDS {
        let base = run(kind, 1, false);
        for jobs in [1usize, 4] {
            let with_repair = run(kind, jobs, true);
            assert_eq!(
                base, with_repair,
                "{kind:?} jobs={jobs}: repair perturbed a healthy run"
            );
        }
    }
}

/// Satellite: a full repair sweep over a freshly built (healthy) overlay
/// leaves every checked-in golden trace file byte-identical — repair
/// never perturbs state the stabilizer would not have touched either.
#[test]
fn golden_traces_are_byte_identical_after_a_repair_sweep() {
    let sweep = |net: &mut dyn Overlay| {
        let mut entries = 0;
        for token in net.node_tokens() {
            entries += net.repair_node(token);
        }
        assert_eq!(entries, 0, "{}: repair rewrote healthy state", net.name());
    };
    for (kind, name) in common::GOLDEN_KINDS {
        let golden = std::fs::read_to_string(common::golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        let rendered = common::render_traces_prepared(kind, None, &sweep);
        assert_eq!(
            golden, rendered,
            "{kind:?}: repair sweep changed the golden trace"
        );
    }
    for (kind, name) in [
        (OverlayKind::Cycloid7, "cycloid7_lossy"),
        (OverlayKind::Chord, "chord_lossy"),
    ] {
        let golden = std::fs::read_to_string(common::golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        let rendered =
            common::render_traces_prepared(kind, Some(common::lossy_conditions()), &sweep);
        assert_eq!(
            golden, rendered,
            "{kind:?}: repair sweep changed the lossy golden"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Headline property: any seed, any kind, any strategy, any severity
    /// of at least 25% — the corrupted network converges back to
    /// audit-clean within the horizon, and the recovered overlay routes
    /// identically at every worker count.
    #[test]
    fn any_corruption_converges_to_clean_under_any_jobs(
        seed in 0u64..10_000,
        kind_ix in 0usize..8,
        strategy_ix in 0usize..5,
        severity in 0.25f64..1.0,
    ) {
        let kind = ALL_KINDS[kind_ix];
        let strategy = CorruptionStrategy::ALL[strategy_ix];
        let (mut net, secs, _) = corrupt_and_recover(kind, strategy, severity, seed);
        prop_assert!(secs <= HORIZON_SECS);
        // Recovered overlays route: same fixed workload, sequential and
        // sharded, must agree exactly and never fail.
        let mut wl = stream(seed, "post-recovery");
        let reqs = random_pairs(net.as_ref(), 60, &mut wl);
        let seq = run_requests_jobs(net.as_mut(), &reqs, 1);
        prop_assert_eq!(seq.failures, 0, "{:?}/{:?} seed={}", kind, strategy, seed);
        // Fresh recovery for the sharded run: batches mutate
        // repair-on-use state, so each jobs value gets its own network.
        let (mut net4, secs4, _) = corrupt_and_recover(kind, strategy, severity, seed);
        prop_assert_eq!(secs, secs4, "recovery time must not depend on the run");
        let par = run_requests_jobs(net4.as_mut(), &reqs, 4);
        prop_assert_eq!(seq.failures, par.failures);
        prop_assert_eq!(format!("{:?}", seq.path), format!("{:?}", par.path));
        prop_assert_eq!(net.query_loads(), net4.query_loads());
    }
}
