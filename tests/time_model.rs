//! Time-model pins for the churn engine: the continuous-time
//! discrete-event kernel must (a) degenerate to the classic round-based
//! semantics when message delays are zero and there is no churn, (b)
//! bill lookup latency exactly as virtual-clock elapsed time, and (c)
//! be bit-deterministic per seed, across repeated runs and across every
//! `jobs` value (see DESIGN.md "Time model").

use dht_core::net::{FaultPlan, NetConditions, RetryPolicy};
use dht_sim::churn::{run_churn, ChurnOutcome, ChurnParams, StabilizePhase, TimeModel};
use dht_sim::{build_overlay, build_overlay_spaced, OverlayKind, ALL_KINDS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params(time: TimeModel, phase: StabilizePhase, churn_rate: f64) -> ChurnParams {
    ChurnParams {
        lookup_rate: 1.0,
        churn_rate,
        stabilization_period_secs: 10,
        lookups: 200,
        warmup_lookups: 10,
        jobs: 1,
        time,
        phase,
        ..ChurnParams::default()
    }
}

fn run(kind: OverlayKind, seed: u64, p: ChurnParams) -> ChurnOutcome {
    // Spaced identifier space so joins under churn have room to land.
    let mut net = build_overlay_spaced(kind, 64, 96, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    run_churn(net.as_mut(), p, &mut rng)
}

/// The per-lookup measurement streams — everything the experiments
/// aggregate over.
fn measurements(o: &ChurnOutcome) -> String {
    format!(
        "path={:?} timeouts={:?} retries={:?} latency={:?} failures={}",
        o.path_lens, o.timeouts, o.retries, o.latency_us, o.failures
    )
}

/// Full outcome fingerprint for determinism checks (adds the
/// continuous-only fields on top of the measurement streams).
fn fingerprint(o: &ChurnOutcome) -> String {
    format!(
        "{} joins={} leaves={} final={} peak={} stab={} elapsed={:?} end={} stranded={}",
        measurements(o),
        o.joins,
        o.leaves,
        o.final_size,
        o.peak_size,
        o.stabilize_calls,
        o.elapsed_us,
        o.sim_end_us,
        o.stranded,
    )
}

/// With zero message delays and no churn, suspending lookups on the
/// virtual clock changes nothing observable: every walk completes
/// within its arrival instant, in arrival order, so the continuous
/// engine reproduces the round-based measurement streams exactly —
/// under either timer phasing, for every overlay kind.
#[test]
fn continuous_degenerates_to_rounds_without_delays_or_churn() {
    for kind in ALL_KINDS {
        let base = measurements(&run(
            kind,
            42,
            params(TimeModel::Rounds, StabilizePhase::Hashed, 0.0),
        ));
        for phase in [StabilizePhase::Hashed, StabilizePhase::Synchronized] {
            let cont = run(kind, 42, params(TimeModel::Continuous, phase, 0.0));
            assert_eq!(
                base,
                measurements(&cont),
                "{kind:?} continuous/{phase:?} diverges from rounds"
            );
        }
    }
}

/// Regression for the latent `NetCosts::latency_us` inconsistency: the
/// rounds engine accumulated delay draws that never advanced any clock.
/// On the virtual clock, every microsecond billed to a lookup is a
/// microsecond the simulation actually waited — reported latency must
/// equal arrival-to-completion elapsed time, lookup by lookup, even
/// under loss, delays, retries, and churn.
#[test]
fn continuous_latency_is_virtual_clock_elapsed_time() {
    for kind in ALL_KINDS {
        let mut p = params(TimeModel::Continuous, StabilizePhase::Hashed, 0.1);
        p.conditions = NetConditions::new(FaultPlan::lossy(7, 0.02), RetryPolicy::standard());
        let out = run(kind, 11, p);
        assert_eq!(out.path_lens.len(), 200, "{kind:?} measured lookups");
        assert_eq!(
            out.latency_us, out.elapsed_us,
            "{kind:?}: billed latency != virtual-clock elapsed time"
        );
        assert!(
            out.latency_us.iter().any(|&us| us > 0),
            "{kind:?}: delays should make some latency nonzero"
        );
    }
}

/// Rounds mode has no clock to elapse: the aligned stream stays empty.
#[test]
fn rounds_mode_has_no_elapsed_stream() {
    let out = run(
        OverlayKind::Cycloid7,
        42,
        params(TimeModel::Rounds, StabilizePhase::Hashed, 0.1),
    );
    assert!(out.elapsed_us.is_empty());
    assert_eq!(out.path_lens.len(), 200);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same seed ⇒ identical event order ⇒ identical outcome, for any
    /// kind, under both time models, with churn and lossy conditions.
    #[test]
    fn any_seed_is_deterministic_across_runs(seed in 0u64..10_000, kind_ix in 0usize..8) {
        let kind = ALL_KINDS[kind_ix];
        for time in [TimeModel::Rounds, TimeModel::Continuous] {
            let mut p = params(time, StabilizePhase::Hashed, 0.2);
            p.lookups = 80;
            p.conditions = NetConditions::new(FaultPlan::lossy(seed ^ 5, 0.02), RetryPolicy::standard());
            let a = run(kind, seed, p.clone());
            let b = run(kind, seed, p);
            prop_assert_eq!(fingerprint(&a), fingerprint(&b), "{:?} {:?} seed={}", kind, time, seed);
        }
    }

    /// `jobs` may only change wall clock, never the outcome — in rounds
    /// mode it sizes the batch executor, in continuous mode it is
    /// ignored entirely.
    #[test]
    fn any_seed_is_jobs_invariant(seed in 0u64..10_000, kind_ix in 0usize..8) {
        let kind = ALL_KINDS[kind_ix];
        for time in [TimeModel::Rounds, TimeModel::Continuous] {
            let mut p = params(time, StabilizePhase::Hashed, 0.2);
            p.lookups = 80;
            p.conditions = NetConditions::new(FaultPlan::lossy(seed ^ 9, 0.02), RetryPolicy::standard());
            let a = run(kind, seed, ChurnParams { jobs: 1, ..p.clone() });
            let b = run(kind, seed, ChurnParams { jobs: 4, ..p });
            prop_assert_eq!(fingerprint(&a), fingerprint(&b), "{:?} {:?} seed={}", kind, time, seed);
        }
    }
}

/// The degenerate configuration also leaves the long-standing golden
/// traces untouched: `tests/golden_traces.rs` pins those byte-for-byte,
/// and the walk engine they exercise is the exact code the cursor now
/// suspends. This test pins the complementary fact that an overlay
/// driven through a full continuous run still audits clean with zero
/// churn (nothing moved, nothing went stale).
#[test]
fn continuous_run_without_churn_leaves_overlay_clean() {
    use dht_core::audit::AuditScope;
    let mut net = build_overlay(OverlayKind::Cycloid7, 64, 42);
    let mut rng = StdRng::seed_from_u64(42);
    let p = params(TimeModel::Continuous, StabilizePhase::Hashed, 0.0);
    let out = run_churn(net.as_mut(), p, &mut rng);
    assert_eq!(out.failures, 0);
    assert!(net.audit_state(AuditScope::Full).is_clean());
}
