//! End-to-end smoke tests of every experiment driver: each figure/table
//! regenerator must produce well-formed rows at quick scale. Protects the
//! reproduction deliverable itself.

use dht_core::audit::AuditScope;
use dht_core::overlay::Overlay;
use dht_core::rng::stream;
use dht_sim::experiments::{
    churn_exp, fault_tolerance, hotspot, key_distribution, maintenance, mass_departure,
    path_length, query_load, sparsity, static_tables, ungraceful,
};
use dht_sim::{build_overlay, build_overlay_spaced, OverlayKind, ALL_KINDS, PAPER_KINDS};
use rand::Rng;

/// Builds a fresh overlay and asserts the full-scope protocol audit holds
/// on every node.
fn full_audit_clean(kind: OverlayKind, n: usize, seed: u64) {
    let net = build_overlay(kind, n, seed);
    let report = net.audit_state(AuditScope::Full);
    assert_eq!(report.checked_nodes(), net.len(), "{}", kind.label());
    assert!(report.is_clean(), "{}", report);
}

#[test]
fn static_tables_regenerate() {
    assert_eq!(static_tables::table1().len(), 6);
    assert_eq!(static_tables::table2().len(), 8);
    assert_eq!(static_tables::table3().len(), 4);
}

#[test]
fn path_length_driver_fig5_6_7() {
    let rows = path_length::measure(&path_length::PathLengthParams::quick(1));
    // 5 systems x 6 sizes.
    assert_eq!(rows.len(), 30);
    for r in &rows {
        assert!(r.agg.path.mean > 0.0, "{} at n={}", r.agg.label, r.n);
        assert_eq!(r.agg.failures, 0);
        assert!(r.agg.breakdown.lookups() > 0);
    }
    // Sizes follow the paper's n = d * 2^d.
    assert!(rows.iter().any(|r| r.n == 24 && r.dimension == 3));
    assert!(rows.iter().any(|r| r.n == 2048 && r.dimension == 8));
}

#[test]
fn key_distribution_driver_fig8_9() {
    let rows = key_distribution::measure(&key_distribution::KeyDistributionParams::quick(2));
    assert!(!rows.is_empty());
    for r in &rows {
        // Keys are conserved: mean * nodes == keys distributed.
        let total = r.per_node.mean * r.per_node.n as f64;
        assert!((total - r.keys as f64).abs() < 1.0, "{}", r.label);
    }
}

#[test]
fn query_load_driver_fig10() {
    let rows = query_load::measure(&query_load::QueryLoadParams::quick(3));
    for r in &rows {
        assert!(r.load.mean > 0.0, "{}", r.label);
        assert!(r.load.p99 >= r.load.p01);
    }
}

#[test]
fn mass_departure_driver_fig11_table4() {
    let rows = mass_departure::measure(&mass_departure::MassDepartureParams::quick(4));
    for r in &rows {
        assert!(r.survivors > 0);
        assert_eq!(r.agg.path.n, 600);
        match r.agg.label.as_str() {
            "Viceroy" => assert_eq!(r.agg.timeouts.max, 0.0),
            "Cycloid(7)" => assert_eq!(r.agg.failures, 0),
            _ => {}
        }
    }
}

#[test]
fn churn_driver_fig12_table5() {
    let rows = churn_exp::measure(&churn_exp::ChurnExpParams::quick(5));
    for r in &rows {
        assert_eq!(r.failures, 0, "{} at R={}", r.label, r.rate);
        assert!(r.joins > 0 && r.leaves > 0);
        assert!(r.path.mean > 0.0);
    }
}

#[test]
fn sparsity_driver_fig13_14() {
    let rows = sparsity::measure(&sparsity::SparsityParams::quick(6));
    for r in &rows {
        assert_eq!(r.agg.failures, 0, "{} at {}", r.agg.label, r.sparsity);
    }
    // The dense point uses (almost) the whole space.
    assert!(rows.iter().any(|r| r.sparsity == 0.0 && r.n == 512));
}

#[test]
fn ungraceful_extension_driver() {
    let rows = ungraceful::measure(&ungraceful::UngracefulParams::quick(7));
    for r in &rows {
        assert_eq!(
            r.after_stabilize.failures, 0,
            "{} must recover",
            r.after_stabilize.label
        );
    }
}

#[test]
fn maintenance_extension_driver() {
    let rows = maintenance::measure(&maintenance::MaintenanceParams::quick(8));
    assert_eq!(rows.len(), 5);
    for r in &rows {
        assert!(r.out_degree.mean > 0.0);
        // Edge conservation: mean in == mean out.
        assert!((r.in_degree.mean - r.out_degree.mean).abs() < 1e-9);
    }
}

#[test]
fn hotspot_extension_driver() {
    let rows = hotspot::measure(&hotspot::HotspotParams::quick(9));
    for r in &rows {
        assert!(r.amplification() > 1.0, "{}", r.label);
    }
}

#[test]
fn fault_tolerance_extension_driver() {
    let params = fault_tolerance::FaultToleranceParams::quick(20);
    let rows = fault_tolerance::measure(&params);
    // All 8 kinds x 6 loss rates.
    assert_eq!(rows.len(), params.kinds.len() * params.losses.len());
    assert_eq!(rows.len(), 48);
    for r in &rows {
        assert_eq!(r.agg.path.n, params.lookups, "{} at {}", r.label, r.loss);
        assert!(r.success_rate() > 0.9, "{} at {}% loss", r.label, r.loss);
        assert!(r.agg.latency_ms.mean > 0.0, "{}", r.label);
        if r.loss == 0.0 {
            assert_eq!(r.agg.retries.max, 0.0, "{}", r.label);
            assert_eq!(r.agg.failures, 0, "{}", r.label);
        }
    }
    // Rows are ordered loss-major: for every kind, the zero-loss cell
    // retries nothing and the 20%-loss cell retries plenty.
    let kinds = params.kinds.len();
    for (k, kind) in params.kinds.iter().enumerate() {
        let first = &rows[k];
        let last = &rows[(params.losses.len() - 1) * kinds + k];
        assert_eq!(first.agg.retries.mean, 0.0, "{}", kind.label());
        assert!(
            last.agg.retries.mean > first.agg.retries.mean,
            "{}: retries must grow with loss",
            kind.label()
        );
    }
}

#[test]
fn fault_tolerance_audit_smoke() {
    // Quick params run with per-cell full-scope audits: message faults
    // must never mutate routing state at any loss rate.
    let rows = fault_tolerance::measure(&fault_tolerance::FaultToleranceParams::quick(21));
    for r in &rows {
        let audit = r.audit.as_ref().expect("quick params enable auditing");
        assert!(audit.checked_nodes() > 0);
        assert!(audit.is_clean(), "{} at {}% loss: {audit}", r.label, r.loss);
    }
}

// --- audit-enabled smoke tests: one per experiments module ----------------
//
// Each driver regenerates a figure from networks it builds internally;
// these companions rebuild the same population shapes and run the
// protocol-invariant audit over them, so a regression in construction or
// maintenance is reported with the violated invariant's name instead of a
// skewed statistic.

#[test]
fn static_tables_audit_smoke() {
    // Table 2's degree column describes the same state the audit's
    // state-size invariants bound; check them on live networks of every
    // kind the table lists.
    for kind in ALL_KINDS {
        full_audit_clean(kind, 64, 10);
    }
}

#[test]
fn path_length_audit_smoke() {
    // Fig 5-7 populate the full id space (n = d * 2^d); audit that shape.
    for kind in PAPER_KINDS {
        full_audit_clean(kind, 160, 11);
    }
}

#[test]
fn key_distribution_audit_smoke() {
    // Figs 8/9 use a partially filled 2048-slot space.
    let net = build_overlay_spaced(OverlayKind::Cycloid7, 120, 256, 12);
    let report = net.audit_state(AuditScope::Full);
    assert_eq!(report.checked_nodes(), 120);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn query_load_audit_smoke() {
    // Fig 10 hammers the network with lookups; routing must not perturb
    // any audited state.
    let mut net = build_overlay(OverlayKind::Cycloid7, 96, 13);
    let mut rng = stream(13, "query-load-audit");
    let tokens = net.node_tokens();
    for i in 0..400 {
        let t = net.lookup(tokens[i % tokens.len()], rng.gen());
        assert!(t.outcome.is_success());
    }
    let report = net.audit_state(AuditScope::Full);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn mass_departure_audit_smoke() {
    // Fig 11 / Table 4: after a 40% crash wave the online audit names the
    // stale state, and one stabilization round restores a clean full
    // audit.
    let mut net = build_overlay(OverlayKind::Chord, 256, 14);
    let mut rng = stream(14, "mass-departure-audit");
    for token in net.node_tokens() {
        if rng.gen_bool(0.4) {
            net.fail(token);
        }
    }
    let broken = net.audit_state(AuditScope::Online);
    assert!(
        broken
            .violated_invariants()
            .contains(&"chord/successor-list"),
        "a 40% crash wave must leave stale successor lists: {broken}"
    );
    net.stabilize();
    let report = net.audit_state(AuditScope::Full);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn churn_audit_smoke() {
    // Fig 12 / Table 5: quick parameters run with the in-driver online
    // audit enabled; every cell must come back clean.
    let rows = churn_exp::measure(&churn_exp::ChurnExpParams::quick(15));
    for r in &rows {
        let audit = r.audit.as_ref().expect("quick params enable auditing");
        assert!(audit.checked_nodes() > 0);
        assert!(audit.is_clean(), "{} at R={}: {audit}", r.label, r.rate);
    }
}

#[test]
fn sparsity_audit_smoke() {
    // Figs 13/14 populate a fraction of a fixed id space.
    for kind in PAPER_KINDS {
        let net = build_overlay_spaced(kind, 205, 512, 16);
        let report = net.audit_state(AuditScope::Full);
        assert_eq!(report.checked_nodes(), net.len(), "{}", kind.label());
        assert!(report.is_clean(), "{report}");
    }
}

#[test]
fn ungraceful_audit_smoke() {
    // The extfail extension: crash a fraction, stabilize, audit fully.
    let mut net = build_overlay(OverlayKind::Cycloid7, 192, 17);
    let mut rng = stream(17, "ungraceful-audit");
    for token in net.node_tokens() {
        if rng.gen_bool(0.25) {
            net.fail(token);
        }
    }
    net.stabilize();
    let report = net.audit_state(AuditScope::Full);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn maintenance_audit_smoke() {
    // The extdegree extension reports degrees; the audit bounds the same
    // state sizes per node.
    for kind in dht_sim::EXTENDED_KINDS {
        full_audit_clean(kind, 96, 18);
    }
}

#[test]
fn hotspot_audit_smoke() {
    // The exthotspot extension routes many lookups to one key; repeated
    // convergent routing must leave all state intact.
    let mut net = build_overlay(OverlayKind::Cycloid7, 96, 19);
    let tokens = net.node_tokens();
    let hot_key = 0xdead_beef_u64;
    for i in 0..300 {
        let t = net.lookup(tokens[i % tokens.len()], hot_key);
        assert!(t.outcome.is_success());
    }
    let report = net.audit_state(AuditScope::Full);
    assert!(report.is_clean(), "{report}");
}
