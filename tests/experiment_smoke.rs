//! End-to-end smoke tests of every experiment driver: each figure/table
//! regenerator must produce well-formed rows at quick scale. Protects the
//! reproduction deliverable itself.

use dht_sim::experiments::{
    churn_exp, hotspot, key_distribution, maintenance, mass_departure, path_length, query_load,
    sparsity, static_tables, ungraceful,
};

#[test]
fn static_tables_regenerate() {
    assert_eq!(static_tables::table1().len(), 6);
    assert_eq!(static_tables::table2().len(), 8);
    assert_eq!(static_tables::table3().len(), 4);
}

#[test]
fn path_length_driver_fig5_6_7() {
    let rows = path_length::measure(&path_length::PathLengthParams::quick(1));
    // 5 systems x 6 sizes.
    assert_eq!(rows.len(), 30);
    for r in &rows {
        assert!(r.agg.path.mean > 0.0, "{} at n={}", r.agg.label, r.n);
        assert_eq!(r.agg.failures, 0);
        assert!(r.agg.breakdown.lookups() > 0);
    }
    // Sizes follow the paper's n = d * 2^d.
    assert!(rows.iter().any(|r| r.n == 24 && r.dimension == 3));
    assert!(rows.iter().any(|r| r.n == 2048 && r.dimension == 8));
}

#[test]
fn key_distribution_driver_fig8_9() {
    let rows = key_distribution::measure(&key_distribution::KeyDistributionParams::quick(2));
    assert!(!rows.is_empty());
    for r in &rows {
        // Keys are conserved: mean * nodes == keys distributed.
        let total = r.per_node.mean * r.per_node.n as f64;
        assert!((total - r.keys as f64).abs() < 1.0, "{}", r.label);
    }
}

#[test]
fn query_load_driver_fig10() {
    let rows = query_load::measure(&query_load::QueryLoadParams::quick(3));
    for r in &rows {
        assert!(r.load.mean > 0.0, "{}", r.label);
        assert!(r.load.p99 >= r.load.p01);
    }
}

#[test]
fn mass_departure_driver_fig11_table4() {
    let rows = mass_departure::measure(&mass_departure::MassDepartureParams::quick(4));
    for r in &rows {
        assert!(r.survivors > 0);
        assert_eq!(r.agg.path.n, 600);
        match r.agg.label.as_str() {
            "Viceroy" => assert_eq!(r.agg.timeouts.max, 0.0),
            "Cycloid(7)" => assert_eq!(r.agg.failures, 0),
            _ => {}
        }
    }
}

#[test]
fn churn_driver_fig12_table5() {
    let rows = churn_exp::measure(&churn_exp::ChurnExpParams::quick(5));
    for r in &rows {
        assert_eq!(r.failures, 0, "{} at R={}", r.label, r.rate);
        assert!(r.joins > 0 && r.leaves > 0);
        assert!(r.path.mean > 0.0);
    }
}

#[test]
fn sparsity_driver_fig13_14() {
    let rows = sparsity::measure(&sparsity::SparsityParams::quick(6));
    for r in &rows {
        assert_eq!(r.agg.failures, 0, "{} at {}", r.agg.label, r.sparsity);
    }
    // The dense point uses (almost) the whole space.
    assert!(rows.iter().any(|r| r.sparsity == 0.0 && r.n == 512));
}

#[test]
fn ungraceful_extension_driver() {
    let rows = ungraceful::measure(&ungraceful::UngracefulParams::quick(7));
    for r in &rows {
        assert_eq!(
            r.after_stabilize.failures, 0,
            "{} must recover",
            r.after_stabilize.label
        );
    }
}

#[test]
fn maintenance_extension_driver() {
    let rows = maintenance::measure(&maintenance::MaintenanceParams::quick(8));
    assert_eq!(rows.len(), 5);
    for r in &rows {
        assert!(r.out_degree.mean > 0.0);
        // Edge conservation: mean in == mean out.
        assert!((r.in_degree.mean - r.out_degree.mean).abs() < 1e-9);
    }
}

#[test]
fn hotspot_extension_driver() {
    let rows = hotspot::measure(&hotspot::HotspotParams::quick(9));
    for r in &rows {
        assert!(r.amplification() > 1.0, "{}", r.label);
    }
}
