//! The complete Cycloid network versus the exact CCC graph: §3.1 claims
//! "the network will be the traditional cube-connected cycles if all
//! nodes are alive". These tests pin down the precise sense in which the
//! emulation holds.

use ccc::{classic_route, CccGraph, CccNode};
use cycloid::{CycloidConfig, CycloidId, CycloidNetwork};
use dht_core::rng::stream;
use rand::Rng;

fn as_ccc(id: CycloidId) -> CccNode {
    CccNode::new(id.cyclic, id.cubical)
}

#[test]
fn identifier_spaces_coincide() {
    for d in 3..=8 {
        let g = CccGraph::new(d);
        let net = CycloidNetwork::complete(CycloidConfig::seven_entry(d));
        assert_eq!(net.node_count() as u64, g.node_count());
        // The linearization orders agree node by node.
        for id in net.ids() {
            assert_eq!(id.linear(net.dim()), g.index_of(as_ccc(id)));
        }
    }
}

#[test]
fn inside_leafs_are_ccc_cycle_edges() {
    // In the complete network, a node's inside leaf set is exactly its
    // CCC cycle predecessor and successor.
    let d = 5;
    let g = CccGraph::new(d);
    let net = CycloidNetwork::complete(CycloidConfig::seven_entry(d));
    for id in net.ids() {
        let state = net.node(id).unwrap();
        let me = as_ccc(id);
        assert_eq!(as_ccc(state.inside_left[0]), g.cycle_prev(me), "{id}");
        assert_eq!(as_ccc(state.inside_right[0]), g.cycle_next(me), "{id}");
    }
}

#[test]
fn cubical_neighbor_flips_bit_k() {
    // The cubical neighbour corrects exactly hypercube dimension k (with
    // cyclic index k-1 and free low bits) — the Cycloid counterpart of
    // the CCC cube edge at position k.
    let d = 6;
    let net = CycloidNetwork::complete(CycloidConfig::seven_entry(d));
    for id in net.ids().filter(|id| id.cyclic > 0) {
        let nb = net
            .node(id)
            .unwrap()
            .cubical_neighbor
            .expect("complete network resolves all cubical neighbours");
        assert_eq!(nb.cyclic, id.cyclic - 1, "{id}");
        let k = id.cyclic;
        // Bits at and above k+1 agree; bit k differs.
        assert_eq!(nb.cubical >> (k + 1), id.cubical >> (k + 1), "{id}");
        assert_ne!((nb.cubical >> k) & 1, (id.cubical >> k) & 1, "{id}");
    }
}

#[test]
fn cycloid_routes_within_constant_factor_of_ccc() {
    // Cycloid's O(d) lookups track the classic CCC routing scheme's O(d)
    // paths within a small constant factor.
    for d in 3..=6 {
        let g = CccGraph::new(d);
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(d));
        let mut rng = stream(u64::from(d), "ccc-vs");
        let space = net.dim().id_space();
        for _ in 0..300 {
            let s = CycloidId::from_linear(rng.gen_range(0..space), net.dim());
            let t = CycloidId::from_linear(rng.gen_range(0..space), net.dim());
            let cyc = net.route_to_id(s, t);
            assert!(cyc.outcome.is_success());
            let ccc_len = classic_route(&g, as_ccc(s), as_ccc(t)).len() - 1;
            assert!(
                cyc.path_len() <= ccc_len + 2 * d as usize,
                "CCC({d}) {s}->{t}: cycloid {} vs classic {ccc_len}",
                cyc.path_len()
            );
        }
    }
}

#[test]
fn complete_network_degree_matches_constant_bound() {
    // CCC is 3-regular; Cycloid adds the leaf sets for a total of at most
    // 7 distinct contacts.
    let net = CycloidNetwork::complete(CycloidConfig::seven_entry(5));
    let mut max_deg = 0;
    for id in net.ids() {
        max_deg = max_deg.max(net.node(id).unwrap().degree());
    }
    assert!(max_deg <= 7);
    assert!(max_deg >= 5, "complete network should use most entries");
}

#[test]
fn ccc_diameter_bounds_cycloid_complete_routing() {
    // In the complete network every lookup is at most a small multiple of
    // the CCC diameter.
    let d = 4;
    let g = CccGraph::new(d);
    let diameter = g.diameter() as usize;
    let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(d));
    let space = net.dim().id_space();
    let mut worst = 0usize;
    for s in 0..space {
        let src = CycloidId::from_linear(s, net.dim());
        for t in (0..space).step_by(7) {
            let dst = CycloidId::from_linear(t, net.dim());
            let trace = net.route_to_id(src, dst);
            assert!(trace.outcome.is_success());
            worst = worst.max(trace.path_len());
        }
    }
    assert!(
        worst <= 2 * diameter,
        "worst Cycloid path {worst} vs CCC diameter {diameter}"
    );
}
