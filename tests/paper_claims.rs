//! The paper's headline experimental claims, verified end-to-end at
//! reduced (but meaningful) scale. Each test names the section/figure it
//! reproduces.

use cycloid_repro::prelude::*;
use dht_core::rng::stream;
use rand::{Rng, RngCore};

fn mean_path(kind: OverlayKind, n: usize, lookups: usize, seed: u64) -> f64 {
    let mut net = build_overlay(kind, n, seed);
    let tokens = net.node_tokens();
    let mut rng = stream(seed, "mp");
    let mut total = 0usize;
    for i in 0..lookups {
        let t = net.lookup(tokens[i % tokens.len()], rng.gen());
        assert!(t.outcome.is_success());
        total += t.path_len();
    }
    total as f64 / lookups as f64
}

#[test]
fn fig5_cycloid_beats_viceroy_by_2x() {
    // §4.1: "the path lengths of Viceroy are more than two times those of
    // Cycloid".
    let cyc = mean_path(OverlayKind::Cycloid7, 896, 2000, 1);
    let vic = mean_path(OverlayKind::Viceroy, 896, 2000, 1);
    assert!(
        vic > 2.0 * cyc,
        "Viceroy {vic:.2} must be > 2x Cycloid {cyc:.2}"
    );
}

#[test]
fn fig6_cycloid_shortest_constant_degree_at_equal_n() {
    // §4.1: "Cycloid leads to shorter lookup path length than Koorde in
    // networks of the same size".
    let cyc = mean_path(OverlayKind::Cycloid7, 896, 2000, 2);
    let koo = mean_path(OverlayKind::Koorde, 896, 2000, 2);
    assert!(cyc < koo, "Cycloid {cyc:.2} must beat Koorde {koo:.2}");
}

#[test]
fn fig5_path_grows_with_size_for_cycloid() {
    let small = mean_path(OverlayKind::Cycloid7, 64, 1000, 3);
    let large = mean_path(OverlayKind::Cycloid7, 2048, 1000, 3);
    assert!(large > small, "O(d) growth: {small:.2} -> {large:.2}");
    // And stays O(d): d = 8 at n = 2048.
    assert!(large < 2.0 * 8.0, "mean {large:.2} must stay below 2d");
}

#[test]
fn fig8_key_balance_cycloid_close_to_chord_viceroy_much_worse() {
    // §4.2 dense case: Cycloid ~ Koorde ~ Chord; Viceroy far worse.
    let keys: Vec<u64> = (0..50_000u64)
        .map(|i| hash_str(&format!("key{i}")))
        .collect();
    let p99 = |kind: OverlayKind| {
        let net = dht_sim::build_overlay_spaced(kind, 2000, 2048, 5);
        Summary::of_counts(&key_counts(net.as_ref(), &keys)).p99
    };
    let cyc = p99(OverlayKind::Cycloid7);
    let cho = p99(OverlayKind::Chord);
    let vic = p99(OverlayKind::Viceroy);
    assert!(
        cyc <= cho * 1.5,
        "dense Cycloid p99 {cyc} should be within 1.5x of Chord {cho}"
    );
    assert!(
        vic > cyc * 1.5,
        "Viceroy p99 {vic} should be much worse than Cycloid {cyc}"
    );
}

#[test]
fn fig9_sparse_key_balance_cycloid_beats_koorde() {
    // §4.2 sparse case (1000 nodes in a 2048 space): "Cycloid leads to a
    // more balanced key distribution than Koorde".
    let keys: Vec<u64> = (0..50_000u64)
        .map(|i| hash_str(&format!("key{i}")))
        .collect();
    let spread = |kind: OverlayKind| {
        let net = dht_sim::build_overlay_spaced(kind, 1000, 2048, 7);
        let s = Summary::of_counts(&key_counts(net.as_ref(), &keys));
        s.p99 / s.mean
    };
    let cyc = spread(OverlayKind::Cycloid7);
    let koo = spread(OverlayKind::Koorde);
    assert!(
        cyc < koo,
        "sparse Cycloid relative p99 {cyc:.2} must beat Koorde {koo:.2}"
    );
}

#[test]
fn fig10_cycloid_smallest_query_load_variation() {
    // §4.2: "Cycloid exhibits the smallest variation of the query load, in
    // comparison with other constant-degree DHTs."
    // The paper measures complete networks (64 and 2048 nodes); use the
    // 2048-node point.
    let spread = |kind: OverlayKind| {
        let mut net = build_overlay(kind, 2048, 9);
        net.reset_query_loads();
        let tokens = net.node_tokens();
        let mut rng = stream(9, kind.label());
        for &src in &tokens {
            for _ in 0..8 {
                let _ = net.lookup(src, rng.gen());
            }
        }
        let s = Summary::of_counts(&net.query_loads());
        (s.p99 - s.p01) / s.mean
    };
    let cyc = spread(OverlayKind::Cycloid7);
    let vic = spread(OverlayKind::Viceroy);
    let koo = spread(OverlayKind::Koorde);
    assert!(cyc < vic, "Cycloid {cyc:.2} must beat Viceroy {vic:.2}");
    // Against Koorde the two are comparable in our accounting (Koorde's
    // even-ID hot spots versus Cycloid's hot primaries / cold low-cyclic
    // nodes) — see EXPERIMENTS.md for the discussion of this delta from
    // the paper's "smallest variation" claim.
    assert!(
        cyc < 2.0 * koo,
        "Cycloid {cyc:.2} must stay comparable to Koorde {koo:.2}"
    );
}

#[test]
fn fig11_mass_departures_cycloid_succeeds_viceroy_shrinks_koorde_fails() {
    // §4.3, all three headline behaviours in one scenario at p = 0.5.
    let run = |kind: OverlayKind| {
        let mut net = build_overlay(kind, 2048, 11);
        let mut rng = stream(11, kind.label());
        for token in net.node_tokens() {
            if rng.gen_bool(0.5) {
                net.leave(token);
            }
        }
        let tokens = net.node_tokens();
        let mut failures = 0usize;
        let mut timeouts = 0u64;
        let mut hops = 0usize;
        let lookups = 2000;
        for i in 0..lookups {
            let t = net.lookup(tokens[i % tokens.len()], rng.gen());
            if !t.outcome.is_success() {
                failures += 1;
            }
            timeouts += u64::from(t.timeouts);
            hops += t.path_len();
        }
        (failures, timeouts, hops as f64 / lookups as f64)
    };
    let (cyc_fail, cyc_touts, _) = run(OverlayKind::Cycloid7);
    assert_eq!(cyc_fail, 0, "Cycloid resolves every lookup at p=0.5");
    assert!(cyc_touts > 0, "Cycloid must observe timeouts at p=0.5");

    let (vic_fail, vic_touts, vic_path) = run(OverlayKind::Viceroy);
    assert_eq!(vic_fail, 0);
    assert_eq!(vic_touts, 0, "Viceroy never times out");
    // §4.3: Viceroy's path shrinks towards the half-size network's.
    let vic_full = mean_path(OverlayKind::Viceroy, 2048, 1000, 13);
    assert!(
        vic_path < vic_full,
        "after p=0.5 Viceroy path {vic_path:.2} < steady {vic_full:.2}"
    );

    let (koo_fail, _, _) = run(OverlayKind::Koorde);
    assert!(koo_fail > 0, "Koorde must fail some lookups at p=0.5");
}

#[test]
fn fig13_sparsity_leaves_cycloid_unharmed_but_slows_koorde() {
    // §4.5: Cycloid keeps its location efficiency as the space empties;
    // Koorde's path length grows as participants drop (at fixed ring
    // width).
    let cyc_dense = mean_path(OverlayKind::Cycloid7, 2048, 1500, 15);
    let cyc_at = |count: usize| {
        // Sparse population of the same 2048-slot space.
        let mut net = dht_sim::build_overlay_spaced(OverlayKind::Cycloid7, count, 2048, 15);
        let tokens = net.node_tokens();
        let mut rng = stream(15, "cs");
        let mut total = 0usize;
        for i in 0..1500 {
            let t = net.lookup(tokens[i % tokens.len()], rng.gen());
            assert!(t.outcome.is_success());
            total += t.path_len();
        }
        total as f64 / 1500.0
    };
    // "the mean path length decreases slightly with the decrease of
    // network size": strictly shorter at 60% sparsity, and even at 90%
    // sparsity within a hop of the dense value (no Koorde-style blow-up).
    let cyc_mid = cyc_at(819);
    let cyc_sparse = cyc_at(205);
    assert!(
        cyc_mid < cyc_dense,
        "60%-sparse Cycloid {cyc_mid:.2} must be shorter than dense {cyc_dense:.2}"
    );
    assert!(
        cyc_sparse <= cyc_dense + 1.0,
        "90%-sparse Cycloid {cyc_sparse:.2} must stay near dense {cyc_dense:.2}"
    );

    // Koorde at fixed 2^11 ring: dense 2048 vs 60%-sparse 819 nodes.
    let koorde_at = |count: usize| {
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), count, 17);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(17, "ks");
        let mut total = 0usize;
        for i in 0..1500 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            assert!(t.outcome.is_success());
            total += t.path_len();
        }
        total as f64 / 1500.0
    };
    let dense = koorde_at(2048);
    let sparse = koorde_at(819);
    assert!(
        sparse > dense,
        "sparse Koorde {sparse:.2} must exceed dense {dense:.2}"
    );
}

#[test]
fn table1_cycloid_is_the_only_o_d_constant_degree_dht() {
    let cyc = build_overlay(OverlayKind::Cycloid7, 64, 19);
    assert_eq!(cyc.degree_bound(), Some(7));
    // And it actually achieves O(d) routing in the complete network.
    let mut complete = CycloidNetwork::complete(CycloidConfig::seven_entry(6));
    let ids: Vec<CycloidId> = complete.ids().collect();
    let mut rng = stream(19, "t1");
    for _ in 0..500 {
        let s = ids[(rng.next_u64() % ids.len() as u64) as usize];
        let d = ids[(rng.next_u64() % ids.len() as u64) as usize];
        let t = complete.route_to_id(s, d);
        assert!(t.outcome.is_success());
        assert!(
            t.path_len() <= 3 * 6,
            "O(d) bound violated: {}",
            t.path_len()
        );
    }
}
