//! Observability-equivalence pins for per-phase cost accounting and the
//! virtual-time sampler: switching the meters on must change *nothing*
//! about what the simulation computes. For every overlay kind and
//! worker count, a fixed-seed churn run with the accountant and sampler
//! enabled must produce bit-identical lookup measurements, query-load
//! tables, audit reports, and trace-event streams to the same run with
//! observability disabled — and the accountant-instrumented golden
//! workload must stay byte-identical to the checked-in golden files.

mod common;

use std::sync::{Arc, Mutex};

use dht_core::obs::{Event, Phase, PhaseAccountant, PhaseTable, RingBufferSink, SinkHandle};
use dht_core::rng::stream_indexed;
use dht_sim::churn::{run_churn, ChurnOutcome, ChurnParams};
use dht_sim::event::SECOND;
use dht_sim::{build_overlay, OverlayKind, ALL_KINDS};
use proptest::prelude::*;

const JOBS: [usize; 2] = [1, 4];

struct ChurnResult {
    outcome: ChurnOutcome,
    loads: Vec<u64>,
    events: Vec<Event>,
    dropped: u64,
    table: Option<PhaseTable>,
}

/// One fixed-seed churn run; `observed` switches the accountant and the
/// sampler on. Everything else — build, workload stream, sink — is
/// identical between the two arms.
fn run(kind: OverlayKind, seed: u64, nodes: usize, jobs: usize, observed: bool) -> ChurnResult {
    let mut net = build_overlay(kind, nodes, seed);
    let ring = Arc::new(Mutex::new(RingBufferSink::new(1 << 16)));
    let acct = if observed {
        PhaseAccountant::enabled()
    } else {
        PhaseAccountant::disabled()
    };
    let params = ChurnParams {
        lookups: 250,
        warmup_lookups: 20,
        audit: true,
        jobs,
        sink: SinkHandle::new(Arc::clone(&ring)),
        accountant: acct.clone(),
        sample_every_us: if observed { 20 * SECOND } else { 0 },
        ..ChurnParams::default()
    };
    let mut rng = stream_indexed(seed, "phase-accounting", 0);
    let outcome = run_churn(net.as_mut(), params, &mut rng);
    let drained = ring.lock().expect("sink lock").drain();
    ChurnResult {
        outcome,
        loads: net.query_loads(),
        events: drained.events,
        dropped: drained.dropped,
        table: acct.snapshot(),
    }
}

/// Every measurement of the run except wall clock (`audit_us`) and the
/// telemetry the observed arm deliberately adds (`samples`).
fn fingerprint(o: &ChurnOutcome) -> String {
    format!(
        "paths={:?} timeouts={:?} failures={} joins={} leaves={} final={} retries={:?} \
         latency={:?} audit={:?} peak={} stab_calls={} stab_rounds={} sim_end={} repairs={}",
        o.path_lens,
        o.timeouts,
        o.failures,
        o.joins,
        o.leaves,
        o.final_size,
        o.retries,
        o.latency_us,
        o.audit,
        o.peak_size,
        o.stabilize_calls,
        o.stabilize_rounds,
        o.sim_end_us,
        o.repair_entries,
    )
}

fn assert_equivalent(kind: OverlayKind, seed: u64, nodes: usize, jobs: usize) {
    let base = run(kind, seed, nodes, jobs, false);
    let observed = run(kind, seed, nodes, jobs, true);
    let ctx = format!("{kind:?} seed={seed} jobs={jobs}");
    assert_eq!(
        fingerprint(&base.outcome),
        fingerprint(&observed.outcome),
        "{ctx}: outcome diverged"
    );
    assert_eq!(base.loads, observed.loads, "{ctx}: query loads diverged");
    assert_eq!(base.events, observed.events, "{ctx}: trace events diverged");
    assert_eq!(base.dropped, observed.dropped, "{ctx}: sink drops diverged");
    // The disabled arm records nothing; the observed arm must have
    // actually metered the run it didn't perturb.
    assert!(base.table.is_none(), "{ctx}: disabled accountant snapshot");
    assert!(
        base.outcome.samples.is_empty(),
        "{ctx}: unsampled telemetry"
    );
    let table = observed.table.expect("enabled accountant snapshots");
    for phase in [
        Phase::Lookup,
        Phase::Stabilize,
        Phase::Join,
        Phase::Leave,
        Phase::Audit,
    ] {
        assert!(
            table.get(phase).msgs > 0,
            "{ctx}: no {} messages billed",
            phase.label()
        );
    }
    assert!(
        !observed.outcome.samples.is_empty(),
        "{ctx}: sampler produced no telemetry"
    );
    let mut prev = 0u64;
    for s in &observed.outcome.samples {
        assert!(s.t_us >= prev, "{ctx}: sample timestamps not monotone");
        prev = s.t_us;
    }
}

#[test]
fn observability_changes_nothing_for_every_kind_and_jobs() {
    for kind in ALL_KINDS {
        for &jobs in &JOBS {
            assert_equivalent(kind, 42, 96, jobs);
        }
    }
}

#[test]
fn accounted_golden_traces_stay_byte_identical() {
    for (kind, stem) in common::GOLDEN_KINDS {
        let golden = std::fs::read_to_string(common::golden_path(stem))
            .unwrap_or_else(|e| panic!("missing golden {stem}: {e}"));
        let accounted = common::render_traces_accounted(kind, None, PhaseAccountant::enabled());
        assert_eq!(golden, accounted, "{kind:?}: accountant perturbed goldens");
    }
    // Only these kinds have checked-in lossy goldens (see
    // `golden_traces.rs`).
    for (kind, stem) in [
        (OverlayKind::Cycloid7, "cycloid7_lossy"),
        (OverlayKind::Chord, "chord_lossy"),
    ] {
        let golden = std::fs::read_to_string(common::golden_path(stem))
            .unwrap_or_else(|e| panic!("missing golden {stem}: {e}"));
        let accounted = common::render_traces_accounted(
            kind,
            Some(common::lossy_conditions()),
            PhaseAccountant::enabled(),
        );
        assert_eq!(
            golden, accounted,
            "{kind:?}: accountant perturbed lossy goldens"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random seeds and kinds: the equivalence is not an artifact of one
    /// lucky workload.
    #[test]
    fn observability_equivalence_holds_for_random_workloads(
        seed in 0u64..1_000_000,
        kind_idx in 0usize..ALL_KINDS.len(),
        jobs_idx in 0usize..JOBS.len(),
    ) {
        assert_equivalent(ALL_KINDS[kind_idx], seed, 64, JOBS[jobs_idx]);
    }
}
