//! Observability regression tests: installing an event sink must never
//! change routing.
//!
//! The acceptance bar for the tracing layer is that every golden trace
//! under `tests/golden/` stays **byte-identical** when a sink is
//! installed — first with the no-op [`NullSink`] (the hot-path guarantee)
//! and, property-tested across seeds, with a recording
//! [`RingBufferSink`] (the any-sink guarantee: emission happens after the
//! routing and fault draws, so what the sink does cannot feed back).

mod common;

use std::sync::{Arc, Mutex};

use common::{golden_path, lossy_conditions, render_traces, render_traces_with_sink, GOLDEN_KINDS};
use cycloid_repro::prelude::{build_overlay, OverlayKind};
use dht_core::obs::{Event, NullSink, RingBufferSink, SinkHandle};
use dht_core::rng::stream;
use proptest::prelude::*;
use rand::Rng;

/// The tentpole pin: with a `NullSink` installed, every checked-in golden
/// file — plain and lossy — is reproduced byte for byte. No regeneration
/// allowed; a mismatch means event emission perturbed routing.
#[test]
fn null_sink_keeps_golden_traces_byte_identical() {
    for (kind, name) in GOLDEN_KINDS {
        let rendered = render_traces_with_sink(kind, None, SinkHandle::new(NullSink));
        let golden = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden file for {name}: {e}"));
        assert_eq!(golden, rendered, "{name}: NullSink changed the trace");
    }
    for (kind, name) in [
        (OverlayKind::Cycloid7, "cycloid7_lossy"),
        (OverlayKind::Chord, "chord_lossy"),
    ] {
        let rendered =
            render_traces_with_sink(kind, Some(lossy_conditions()), SinkHandle::new(NullSink));
        let golden = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden file for {name}: {e}"));
        assert_eq!(golden, rendered, "{name}: NullSink changed the lossy trace");
    }
}

/// A recording sink is held to the same standard as the no-op one: the
/// rendered workload must match the disabled-handle rendering exactly,
/// including under message faults.
#[test]
fn ring_buffer_sink_keeps_golden_traces_byte_identical() {
    for (kind, name) in GOLDEN_KINDS {
        let sink = SinkHandle::new(RingBufferSink::new(1 << 14));
        assert_eq!(
            render_traces(kind, None),
            render_traces_with_sink(kind, None, sink),
            "{name}: RingBufferSink changed the trace"
        );
    }
    let sink = SinkHandle::new(RingBufferSink::new(1 << 14));
    assert_eq!(
        render_traces(OverlayKind::Chord, Some(lossy_conditions())),
        render_traces_with_sink(OverlayKind::Chord, Some(lossy_conditions()), sink),
        "RingBufferSink changed the lossy trace"
    );
}

/// The recorded event stream agrees with the returned traces: one
/// `LookupStart`/`LookupEnd` pair per lookup and one `Hop` per entry in
/// `LookupTrace::hops`, in order.
#[test]
fn recorded_events_match_returned_traces() {
    let ring = Arc::new(Mutex::new(RingBufferSink::new(1 << 14)));
    let mut net = build_overlay(OverlayKind::Cycloid7, 64, 42);
    net.set_trace_sink(SinkHandle::new(Arc::clone(&ring)));
    let tokens = net.node_tokens();
    let mut keys = stream(42, "obs-events");
    let mut total_hops = 0usize;
    let lookups = 32;
    for i in 0..lookups {
        let trace = net.lookup(tokens[i % tokens.len()], keys.gen());
        total_hops += trace.hops.len();
    }
    let events = ring.lock().unwrap().snapshot();
    let starts = events
        .iter()
        .filter(|e| matches!(e, Event::LookupStart { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e, Event::LookupEnd { .. }))
        .count();
    let hops = events
        .iter()
        .filter(|e| matches!(e, Event::Hop { .. }))
        .count();
    assert_eq!(starts, lookups);
    assert_eq!(ends, lookups);
    assert_eq!(hops, total_hops);
    // Hop indices restart at 0 within each lookup and increase by one.
    let mut expected_index = 0u32;
    for event in &events {
        match event {
            Event::LookupStart { .. } => expected_index = 0,
            Event::Hop { index, .. } => {
                assert_eq!(*index, expected_index, "hop indices must be sequential");
                expected_index += 1;
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Across seeds and overlay kinds, runs with a `NullSink` and with a
    /// `RingBufferSink` produce identical lookup traces — outcome,
    /// terminal, hop sequence, timeout count, and message costs.
    #[test]
    fn sinks_never_perturb_lookups(seed in 0u64..1000, kind_ix in 0usize..GOLDEN_KINDS.len()) {
        let (kind, _) = GOLDEN_KINDS[kind_ix];
        let mut null_net = build_overlay(kind, 48, seed);
        null_net.set_trace_sink(SinkHandle::new(NullSink));
        let mut ring_net = build_overlay(kind, 48, seed);
        ring_net.set_trace_sink(SinkHandle::new(RingBufferSink::new(1 << 12)));
        let tokens = null_net.node_tokens();
        let mut keys = stream(seed, "obs-prop");
        for i in 0..16usize {
            let src = tokens[i % tokens.len()];
            let key: u64 = keys.gen();
            let a = null_net.lookup(src, key);
            let b = ring_net.lookup(src, key);
            prop_assert_eq!(&a.hops, &b.hops);
            prop_assert_eq!(a.outcome, b.outcome);
            prop_assert_eq!(a.terminal, b.terminal);
            prop_assert_eq!(a.timeouts, b.timeouts);
            prop_assert_eq!(a.net, b.net);
        }
    }
}
