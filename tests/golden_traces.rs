//! Deterministic golden-trace tests: fixed-seed lookup traces for every
//! overlay, compared line-by-line against checked-in files under
//! `tests/golden/`. The rendering harness lives in `tests/common/` and
//! is shared with `obs_traces.rs`.
//!
//! Each line records one lookup end to end — index, source token, raw key,
//! outcome, terminal token, timeout count, and the comma-joined hop-phase
//! tags — so any change to a routing decision (a different next hop, an
//! extra phase, a new terminal) shifts at least one line and fails the
//! test for that overlay.
//!
//! The `*_lossy` variants replay the same workload under a fixed
//! [`FaultPlan`](dht_core::net::FaultPlan) (10% loss, 20–80 ms RTT, 2%
//! duplication) and additionally pin each lookup's message retries and
//! simulated latency, covering the deterministic fault path end to end.
//!
//! To regenerate after an *intentional* routing change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_traces
//! git diff tests/golden/    # review every changed line before committing
//! ```

mod common;

use common::{golden_path, lossy_conditions, render_traces};
use cycloid_repro::prelude::OverlayKind;
use dht_core::net::NetConditions;

/// Compares the replayed trace against the checked-in golden file, or
/// rewrites the file when `GOLDEN_REGEN` is set.
fn check_golden(kind: OverlayKind, name: &str) {
    check_golden_with(kind, name, None);
}

fn check_golden_with(kind: OverlayKind, name: &str, conditions: Option<NetConditions>) {
    let actual = render_traces(kind, conditions);
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}\n\
             regenerate with: GOLDEN_REGEN=1 cargo test --test golden_traces",
            path.display()
        )
    });
    if expected != actual {
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a);
        let detail = match mismatch {
            Some((line, (e, a))) => {
                format!(
                    "first mismatch at line {}:\n  golden: {e}\n  actual: {a}",
                    line + 1
                )
            }
            None => format!(
                "line count differs: golden {} vs actual {}",
                expected.lines().count(),
                actual.lines().count()
            ),
        };
        panic!(
            "routing trace for {name} diverged from {}\n{detail}\n\
             if the routing change is intentional, regenerate with:\n  \
             GOLDEN_REGEN=1 cargo test --test golden_traces\n\
             and review the diff under tests/golden/ before committing",
            path.display()
        );
    }
}

#[test]
fn golden_cycloid7() {
    check_golden(OverlayKind::Cycloid7, "cycloid7");
}

#[test]
fn golden_cycloid11() {
    check_golden(OverlayKind::Cycloid11, "cycloid11");
}

#[test]
fn golden_chord() {
    check_golden(OverlayKind::Chord, "chord");
}

#[test]
fn golden_koorde() {
    check_golden(OverlayKind::Koorde, "koorde");
}

#[test]
fn golden_pastry() {
    check_golden(OverlayKind::Pastry, "pastry");
}

#[test]
fn golden_viceroy() {
    check_golden(OverlayKind::Viceroy, "viceroy");
}

#[test]
fn golden_can() {
    check_golden(OverlayKind::Can, "can");
}

#[test]
fn golden_cycloid7_lossy() {
    check_golden_with(
        OverlayKind::Cycloid7,
        "cycloid7_lossy",
        Some(lossy_conditions()),
    );
}

#[test]
fn golden_chord_lossy() {
    check_golden_with(OverlayKind::Chord, "chord_lossy", Some(lossy_conditions()));
}

#[test]
fn golden_workload_is_replayable() {
    // The harness itself must be deterministic, or the files would churn
    // on every regeneration.
    assert_eq!(
        render_traces(OverlayKind::Chord, None),
        render_traces(OverlayKind::Chord, None)
    );
    assert_eq!(
        render_traces(OverlayKind::Chord, Some(lossy_conditions())),
        render_traces(OverlayKind::Chord, Some(lossy_conditions()))
    );
}
