//! Shared golden-trace harness: replays a fixed-seed lookup workload on
//! a freshly built overlay and renders the line-per-lookup trace format
//! the files under `tests/golden/` pin. Used by `golden_traces.rs` (the
//! byte-level regression tests) and `obs_traces.rs` (which re-runs the
//! same workload with event sinks installed to prove tracing never
//! perturbs routing).
#![allow(dead_code)] // each test binary uses its own subset

use std::fmt::Write as _;
use std::path::PathBuf;

use cycloid_repro::prelude::{build_overlay, OverlayKind};
use dht_core::net::{DelayModel, FaultPlan, NetConditions, RetryPolicy};
use dht_core::obs::{PhaseAccountant, SinkHandle};
use dht_core::rng::stream;
use rand::Rng;

/// Network size for every golden trace.
pub const NODES: usize = 64;
/// Master seed for both the network build and the key stream.
pub const SEED: u64 = 42;
/// Lookups recorded per overlay.
pub const LOOKUPS: usize = 48;

/// Every overlay kind with a plain (fault-free) golden file, paired with
/// its file stem under `tests/golden/`.
pub const GOLDEN_KINDS: [(OverlayKind, &str); 7] = [
    (OverlayKind::Cycloid7, "cycloid7"),
    (OverlayKind::Cycloid11, "cycloid11"),
    (OverlayKind::Chord, "chord"),
    (OverlayKind::Koorde, "koorde"),
    (OverlayKind::Pastry, "pastry"),
    (OverlayKind::Viceroy, "viceroy"),
    (OverlayKind::Can, "can"),
];

/// The fixed fault plan behind every `*_lossy` golden file.
pub fn lossy_conditions() -> NetConditions {
    NetConditions::new(
        FaultPlan {
            seed: 7,
            loss: 0.10,
            delay: DelayModel::Uniform(20_000, 80_000),
            duplicate: 0.02,
        },
        RetryPolicy::standard(),
    )
}

/// Absolute path of one golden file.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Replays the fixed workload on a freshly built overlay and renders the
/// trace file content with no event sink installed. With `conditions`,
/// lookups run under that fault plan and every line additionally pins
/// retries and latency; without, the format is byte-identical to the
/// pre-fault-layer files.
pub fn render_traces(kind: OverlayKind, conditions: Option<NetConditions>) -> String {
    render_traces_with_sink(kind, conditions, SinkHandle::disabled())
}

/// [`render_traces`] with an event sink installed before the workload
/// runs. The rendered text must not depend on the sink — `obs_traces.rs`
/// pins that equivalence against the checked-in golden files.
pub fn render_traces_with_sink(
    kind: OverlayKind,
    conditions: Option<NetConditions>,
    sink: SinkHandle,
) -> String {
    render_inner(kind, conditions, sink, None)
}

/// [`render_traces`] routed through `Overlay::lookup_batch` with the
/// given worker cap instead of one `lookup` call at a time. Batch
/// semantics defer repair-on-use to the end of the batch, so the output
/// is its own canonical form (not byte-equal to the golden files for
/// repairing overlays) — but it must be byte-identical for *every*
/// `jobs` value; `parallel_determinism.rs` pins that.
pub fn render_traces_jobs(
    kind: OverlayKind,
    conditions: Option<NetConditions>,
    jobs: usize,
) -> String {
    render_inner(kind, conditions, SinkHandle::disabled(), Some(jobs))
}

/// [`render_traces`] with a phase accountant installed before the
/// workload runs. Billing is cost *observation*, never a routing input,
/// so the rendered text must stay byte-identical to the accountant-free
/// goldens — `phase_accounting.rs` pins that equivalence.
pub fn render_traces_accounted(
    kind: OverlayKind,
    conditions: Option<NetConditions>,
    acct: PhaseAccountant,
) -> String {
    let prepare: PrepareFn = &move |net: &mut dyn dht_core::overlay::Overlay| {
        net.set_phase_accountant(acct.clone());
    };
    render_with(
        kind,
        conditions,
        SinkHandle::disabled(),
        None,
        Some(prepare),
    )
}

/// A hook run on the freshly built overlay before the golden workload.
pub type PrepareFn<'a> = &'a dyn Fn(&mut dyn dht_core::overlay::Overlay);

/// [`render_traces`] with `prepare` run on the freshly built overlay
/// before the workload. `self_stabilization.rs` pins that a full
/// self-repair sweep over a healthy network leaves the rendered traces
/// byte-identical to the checked-in golden files.
pub fn render_traces_prepared(
    kind: OverlayKind,
    conditions: Option<NetConditions>,
    prepare: PrepareFn,
) -> String {
    render_with(
        kind,
        conditions,
        SinkHandle::disabled(),
        None,
        Some(prepare),
    )
}

fn render_inner(
    kind: OverlayKind,
    conditions: Option<NetConditions>,
    sink: SinkHandle,
    jobs: Option<usize>,
) -> String {
    render_with(kind, conditions, sink, jobs, None)
}

fn render_with(
    kind: OverlayKind,
    conditions: Option<NetConditions>,
    sink: SinkHandle,
    jobs: Option<usize>,
    prepare: Option<PrepareFn>,
) -> String {
    let mut net = build_overlay(kind, NODES, SEED);
    if let Some(prepare) = prepare {
        prepare(net.as_mut());
    }
    if let Some(c) = conditions {
        net.set_net_conditions(c);
    }
    net.set_trace_sink(sink);
    let tokens = net.node_tokens();
    let mut keys = stream(SEED, "golden-keys");
    let mut out = String::new();
    writeln!(
        out,
        "# golden trace: {} n={NODES} seed={SEED} lookups={LOOKUPS}",
        net.name()
    )
    .unwrap();
    if let Some(c) = conditions {
        writeln!(
            out,
            "# fault plan: seed={} loss={} delay={:?} duplicate={} retry(max_attempts={} base_us={} factor={} cap_us={})",
            c.plan.seed,
            c.plan.loss,
            c.plan.delay,
            c.plan.duplicate,
            c.retry.max_attempts,
            c.retry.base_timeout_us,
            c.retry.backoff_factor,
            c.retry.max_timeout_us
        )
        .unwrap();
        writeln!(
            out,
            "# line: index src key -> outcome @terminal timeouts retries latency_us phases"
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "# line: index src key -> outcome @terminal timeouts phases"
        )
        .unwrap();
    }
    let reqs: Vec<(u64, u64)> = (0..LOOKUPS)
        .map(|i| (tokens[i % tokens.len()], keys.gen()))
        .collect();
    let traces: Vec<_> = match jobs {
        Some(n) => net.lookup_batch(&reqs, n),
        None => reqs
            .iter()
            .map(|&(src, key)| net.lookup(src, key))
            .collect(),
    };
    for (i, (&(src, key), trace)) in reqs.iter().zip(&traces).enumerate() {
        let phases = if trace.hops.is_empty() {
            "-".to_string()
        } else {
            trace
                .hops
                .iter()
                .map(|h| h.label())
                .collect::<Vec<_>>()
                .join(",")
        };
        if conditions.is_some() {
            writeln!(
                out,
                "{i:02} src={src:#x} key={key:#018x} -> {:?} @{:#x} timeouts={} retries={} latency_us={} {phases}",
                trace.outcome, trace.terminal, trace.timeouts, trace.net.retries, trace.net.latency_us
            )
            .unwrap();
        } else {
            writeln!(
                out,
                "{i:02} src={src:#x} key={key:#018x} -> {:?} @{:#x} timeouts={} {phases}",
                trace.outcome, trace.terminal, trace.timeouts
            )
            .unwrap();
        }
    }
    out
}
