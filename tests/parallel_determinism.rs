//! Jobs-invariance pins for the parallel lookup engine: for every
//! overlay kind, a fixed-seed workload must produce byte-identical
//! golden traces, equal lookup aggregates, and equal per-node
//! query-load tables at every worker count. Wall clock is the only
//! thing `--jobs` is allowed to change (see
//! `dht_core::sim::ParallelExecutor` and DESIGN.md "Parallel
//! execution").

mod common;

use dht_core::rng::stream_indexed;
use dht_core::workload::random_pairs;
use dht_sim::experiments::{run_requests_jobs, LookupAggregate};
use dht_sim::{build_overlay, OverlayKind, ALL_KINDS};
use proptest::prelude::*;

const JOBS: [usize; 3] = [1, 2, 8];

/// One full batch at the given worker count on a freshly built overlay:
/// the aggregate plus the final query-load table.
fn run_batch(kind: OverlayKind, seed: u64, jobs: usize) -> (LookupAggregate, Vec<u64>) {
    let mut net = build_overlay(kind, 96, seed);
    // The workload stream depends only on the seed, never on `jobs`.
    let mut rng = stream_indexed(seed, "parallel-determinism", 0);
    let reqs = random_pairs(net.as_ref(), 300, &mut rng);
    let agg = run_requests_jobs(net.as_mut(), &reqs, jobs);
    (agg, net.query_loads())
}

/// Everything in the aggregate except wall clock.
fn fingerprint(a: &LookupAggregate) -> String {
    format!(
        "{} n={} path={:?} timeouts={:?} failures={} retries={:?} msg_timeouts={:?} latency={:?} totals=({},{},{})",
        a.label,
        a.n_start,
        a.path,
        a.timeouts,
        a.failures,
        a.retries,
        a.msg_timeouts,
        a.latency_ms,
        a.timeouts_total,
        a.retries_total,
        a.msg_timeouts_total,
    )
}

#[test]
fn aggregates_and_loads_are_jobs_invariant_for_every_kind() {
    for kind in ALL_KINDS {
        let (base_agg, base_loads) = run_batch(kind, 42, JOBS[0]);
        let base = fingerprint(&base_agg);
        for &jobs in &JOBS[1..] {
            let (agg, loads) = run_batch(kind, 42, jobs);
            assert_eq!(base, fingerprint(&agg), "{kind:?} aggregate at jobs={jobs}");
            assert_eq!(base_loads, loads, "{kind:?} query loads at jobs={jobs}");
        }
    }
}

#[test]
fn golden_trace_rendering_is_jobs_invariant_for_every_kind() {
    for kind in ALL_KINDS {
        let base = common::render_traces_jobs(kind, None, JOBS[0]);
        for &jobs in &JOBS[1..] {
            let got = common::render_traces_jobs(kind, None, jobs);
            assert_eq!(base, got, "{kind:?} ideal traces diverge at jobs={jobs}");
        }
    }
}

#[test]
fn lossy_golden_trace_rendering_is_jobs_invariant_for_every_kind() {
    // Under loss, every contact draws from the fault plan; the draws are
    // keyed per (lookup, target, attempt), so thread interleaving cannot
    // reorder them.
    for kind in ALL_KINDS {
        let conditions = common::lossy_conditions();
        let base = common::render_traces_jobs(kind, Some(conditions), JOBS[0]);
        for &jobs in &JOBS[1..] {
            let got = common::render_traces_jobs(kind, Some(conditions), jobs);
            assert_eq!(base, got, "{kind:?} lossy traces diverge at jobs={jobs}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed, any kind: one worker and eight workers agree exactly.
    #[test]
    fn any_seed_is_jobs_invariant(seed in 0u64..10_000, kind_ix in 0usize..8) {
        let kind = ALL_KINDS[kind_ix];
        let (seq_agg, seq_loads) = run_batch(kind, seed, 1);
        let (par_agg, par_loads) = run_batch(kind, seed, 8);
        prop_assert_eq!(fingerprint(&seq_agg), fingerprint(&par_agg), "{:?} seed={}", kind, seed);
        prop_assert_eq!(seq_loads, par_loads, "{:?} seed={} loads", kind, seed);
    }
}
