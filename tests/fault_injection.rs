//! Message-level fault injection: the deterministic unreliable-network
//! layer (`dht_core::net`) threaded through the shared walk engine.
//!
//! Three contracts are pinned here:
//!
//! 1. **Strict superset**: with loss = 0 the fault layer reproduces
//!    today's routing exactly (hops, outcomes, terminals, stale-entry
//!    timeouts), for every overlay kind — delay and duplication models
//!    only add latency bookkeeping.
//! 2. **Exact retry budget**: at 100% loss every contact burns exactly
//!    `max_attempts` sends and the lookup fails without a single hop.
//! 3. **No state mutation**: message faults must never touch routing
//!    tables — the protocol-invariant audit stays clean after heavy loss,
//!    and message-unreachable live nodes are never fed to repair-on-use.

use cycloid_repro::prelude::*;
use dht_core::lookup::LookupOutcome;
use dht_core::net::{DelayModel, FaultPlan, NetConditions, NetCosts, RetryPolicy};
use dht_core::rng::stream;
use dht_core::workload::random_pairs;
use dht_sim::churn::{run_churn, ChurnParams};
use dht_sim::ALL_KINDS;
use proptest::prelude::*;

const NODES: usize = 64;
const LOOKUPS: usize = 60;

type TraceKey = (Vec<HopPhase>, LookupOutcome, u64, u32);

/// Replays a fixed workload under `conditions` and returns the routing
/// decisions (hops, outcome, terminal, stale timeouts) and net costs.
fn replay(
    kind: OverlayKind,
    seed: u64,
    conditions: Option<NetConditions>,
) -> (Vec<TraceKey>, Vec<NetCosts>) {
    let mut net = build_overlay(kind, NODES, seed);
    if let Some(c) = conditions {
        net.set_net_conditions(c);
    }
    let reqs = random_pairs(net.as_ref(), LOOKUPS, &mut stream(seed, "fault-workload"));
    let mut routing = Vec::with_capacity(reqs.len());
    let mut costs = Vec::with_capacity(reqs.len());
    for req in &reqs {
        let t = net.lookup(req.src, req.raw_key);
        routing.push((t.hops.clone(), t.outcome, t.terminal, t.timeouts));
        costs.push(t.net);
    }
    (routing, costs)
}

#[test]
fn zero_loss_is_a_strict_superset_of_ideal_routing() {
    // Any delay model and even aggressive duplication must leave every
    // routing decision untouched when no message is ever lost.
    let plan = FaultPlan {
        seed: 99,
        loss: 0.0,
        delay: DelayModel::Uniform(5_000, 95_000),
        duplicate: 0.25,
    };
    for kind in ALL_KINDS {
        let (ideal, ideal_costs) = replay(kind, 13, None);
        let (faulty, faulty_costs) = replay(
            kind,
            13,
            Some(NetConditions::new(plan, RetryPolicy::standard())),
        );
        assert_eq!(
            ideal,
            faulty,
            "{}: routing diverged at loss=0",
            kind.label()
        );
        for (i, c) in faulty_costs.iter().enumerate() {
            assert_eq!(c.retries, 0, "{} lookup {i}", kind.label());
            assert_eq!(c.msg_timeouts, 0, "{} lookup {i}", kind.label());
        }
        let billed: u64 = faulty_costs.iter().map(|c| c.latency_us).sum();
        let hops: usize = ideal.iter().map(|(h, ..)| h.len()).sum();
        assert!(
            billed >= hops as u64 * 5_000,
            "{}: every hop draws at least the minimum RTT",
            kind.label()
        );
        assert!(
            ideal_costs.iter().all(|c| *c == NetCosts::default()),
            "{}: ideal network bills nothing",
            kind.label()
        );
    }
}

#[test]
fn total_loss_fails_after_exactly_max_attempts_per_contact() {
    let retry = RetryPolicy::standard();
    let plan = FaultPlan {
        seed: 4,
        loss: 1.0,
        delay: DelayModel::Constant(0),
        duplicate: 0.0,
    };
    for kind in ALL_KINDS {
        let (routing, costs) = replay(kind, 17, Some(NetConditions::new(plan, retry)));
        let mut contacts_seen = 0u64;
        for (i, ((hops, outcome, _, stale), c)) in routing.iter().zip(&costs).enumerate() {
            assert!(
                hops.is_empty(),
                "{} lookup {i}: no message is ever delivered",
                kind.label()
            );
            // A source that happens to own the key legitimately succeeds
            // with zero hops; everything else must fail in place.
            if *outcome == LookupOutcome::Found {
                assert_eq!(c.msg_timeouts, 0, "{} lookup {i}", kind.label());
            }
            assert_eq!(
                *stale,
                0,
                "{} lookup {i}: lost contacts are not stale entries",
                kind.label()
            );
            // The heart of the contract: every abandoned contact burned
            // exactly max_attempts sends, i.e. max_attempts - 1 retries.
            assert_eq!(
                c.retries,
                c.msg_timeouts * (retry.max_attempts - 1),
                "{} lookup {i}",
                kind.label()
            );
            // And each cost the full backoff cycle of waiting.
            assert_eq!(
                c.latency_us,
                u64::from(c.msg_timeouts) * retry.give_up_us(),
                "{} lookup {i}",
                kind.label()
            );
            contacts_seen += u64::from(c.msg_timeouts);
        }
        assert!(
            contacts_seen > 0,
            "{}: the workload must attempt at least one contact",
            kind.label()
        );
    }
}

#[test]
fn heavy_loss_never_mutates_routing_state() {
    // 30% loss makes whole retry cycles fail (0.3^4 per contact), which
    // skips live candidates mid-walk. Routing tables must be left exactly
    // as a fault-free run leaves them: the full-scope audit stays clean.
    let plan = FaultPlan {
        seed: 21,
        loss: 0.30,
        delay: DelayModel::Uniform(1_000, 9_000),
        duplicate: 0.05,
    };
    for kind in ALL_KINDS {
        let mut net = build_overlay(kind, NODES, 29);
        net.set_net_conditions(NetConditions::new(plan, RetryPolicy::standard()));
        let reqs = random_pairs(net.as_ref(), 150, &mut stream(29, "heavy-loss"));
        let mut timed_out_contacts = 0u64;
        for req in &reqs {
            timed_out_contacts += u64::from(net.lookup(req.src, req.raw_key).net.msg_timeouts);
        }
        let report = net.audit_state(AuditScope::Full);
        assert!(
            report.is_clean(),
            "{} after {timed_out_contacts} abandoned contacts: {report}",
            kind.label()
        );
        assert_eq!(report.checked_nodes(), NODES, "{}", kind.label());
    }
}

#[test]
fn loss_and_churn_compose_without_failures() {
    // §4.4 churn with a 5% lossy network on top: Cycloid must still
    // resolve every lookup, and the run stays deterministic.
    let conditions = NetConditions::new(FaultPlan::lossy(31, 0.05), RetryPolicy::standard());
    let run = || {
        let mut net = build_overlay(OverlayKind::Cycloid7, 128, 37);
        let mut rng = stream(41, "churn-loss");
        let params = ChurnParams {
            lookups: 400,
            warmup_lookups: 40,
            churn_rate: 0.2,
            audit: true,
            conditions,
            ..ChurnParams::default()
        };
        run_churn(net.as_mut(), params, &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.failures, 0, "5% loss with retries must not fail lookups");
    assert_eq!(a.path_lens, b.path_lens);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.latency_us, b.latency_us);
    assert!(a.retries.iter().sum::<u64>() > 0);
    let audit = a.audit.expect("audit requested");
    assert!(audit.is_clean(), "{audit}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fixed_seed_lossy_runs_are_bit_identical(
        loss in 0.0f64..0.9,
        plan_seed in 0u64..1_000,
        net_seed in 1u64..64,
    ) {
        // For any survivable fault plan, the full observable record —
        // routing decisions AND message-level bill — replays exactly.
        let plan = FaultPlan {
            seed: plan_seed,
            loss,
            delay: DelayModel::Uniform(2_000, 50_000),
            duplicate: 0.1,
        };
        let conditions = Some(NetConditions::new(plan, RetryPolicy::standard()));
        let a = replay(OverlayKind::Cycloid7, net_seed, conditions);
        let b = replay(OverlayKind::Cycloid7, net_seed, conditions);
        prop_assert_eq!(&a.0, &b.0);
        prop_assert_eq!(&a.1, &b.1);
    }

    #[test]
    fn any_delay_model_at_zero_loss_reproduces_hop_counts(
        plan_seed in 0u64..1_000,
        net_seed in 1u64..64,
        lo in 0u64..10_000,
        span in 0u64..100_000,
    ) {
        let plan = FaultPlan {
            seed: plan_seed,
            loss: 0.0,
            delay: DelayModel::Uniform(lo, lo + span),
            duplicate: 0.0,
        };
        let (ideal, _) = replay(OverlayKind::Chord, net_seed, None);
        let (faulty, costs) = replay(
            OverlayKind::Chord,
            net_seed,
            Some(NetConditions::new(plan, RetryPolicy::standard())),
        );
        prop_assert_eq!(ideal, faulty);
        prop_assert!(costs.iter().all(|c| c.retries == 0 && c.msg_timeouts == 0));
    }
}
