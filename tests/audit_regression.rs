//! Audit regression suite: the protocol-invariant auditor must report
//! zero violations for every overlay under the default churn model and on
//! large static networks.
//!
//! These are the canary tests for maintenance regressions: a protocol
//! change that leaves any §3-style invariant stale fails here with the
//! invariant's name rather than as a drifting figure statistic.

use dht_core::audit::AuditScope;
use dht_core::overlay::Overlay;
use dht_core::rng::stream;
use dht_sim::churn::{run_churn, ChurnParams};
use dht_sim::{build_overlay, OverlayKind, ALL_KINDS};

/// The six distinct overlay protocols (Cycloid(11) shares Cycloid's code;
/// KoordeBestFit shares Koorde's).
const SIX: [OverlayKind; 6] = [
    OverlayKind::Cycloid7,
    OverlayKind::Chord,
    OverlayKind::Koorde,
    OverlayKind::Pastry,
    OverlayKind::Viceroy,
    OverlayKind::Can,
];

#[test]
fn default_churn_is_audit_clean_for_all_six_overlays() {
    // ChurnParams::default() (R = 0.05, 30 s stabilization) at reduced
    // lookup volume: the online audit runs after every stabilization
    // round and at the end, and must never flag anything.
    for kind in SIX {
        let mut net = build_overlay(kind, 128, 21);
        let mut rng = stream(22, kind.label());
        let params = ChurnParams {
            lookups: 600,
            warmup_lookups: 50,
            audit: true,
            ..ChurnParams::default()
        };
        let out = run_churn(net.as_mut(), params, &mut rng);
        let audit = out.audit.expect("audit requested");
        assert!(
            audit.checked_nodes() > 0,
            "{}: audit never ran",
            kind.label()
        );
        assert!(audit.is_clean(), "{}: {audit}", kind.label());
        // And once the run settles, the lazily-repaired state converges
        // too: a stabilization round later the full scope is clean.
        net.stabilize();
        let full = net.audit_state(AuditScope::Full);
        assert!(full.is_clean(), "{}: {full}", kind.label());
    }
}

#[test]
fn static_networks_at_1024_nodes_are_fully_clean() {
    // Bulk-built networks of every kind at n = 1024: the full-scope audit
    // checks each node and finds nothing.
    for kind in ALL_KINDS {
        let net = build_overlay(kind, 1024, 23);
        let report = net.audit_state(AuditScope::Full);
        assert_eq!(report.checked_nodes(), 1024, "{}", kind.label());
        assert!(report.is_clean(), "{}: {report}", kind.label());
    }
}

#[test]
fn churn_at_1024_nodes_is_audit_clean() {
    // The acceptance-scale run: sustained default-rate churn on a
    // 1024-node network, audited each round, for every distinct protocol.
    for kind in SIX {
        // CAN's neighbour resolution is O(n * zones); trim its workload so
        // the suite stays fast without weakening the other overlays.
        let lookups = if kind == OverlayKind::Can { 300 } else { 1_500 };
        let mut net = build_overlay(kind, 1024, 24);
        let mut rng = stream(25, kind.label());
        let params = ChurnParams {
            lookups,
            warmup_lookups: 100,
            audit: true,
            ..ChurnParams::default()
        };
        let out = run_churn(net.as_mut(), params, &mut rng);
        let audit = out.audit.expect("audit requested");
        assert!(audit.checked_nodes() >= 1024, "{}", kind.label());
        assert!(audit.is_clean(), "{}: {audit}", kind.label());
        assert_eq!(out.failures, 0, "{}", kind.label());
    }
}
